(** Low-rank adaptation of a frozen weight matrix (Hu et al. 2021; used by
    the paper's fine-tuning stage, Appendix E).

    The effective weight is [W + A·B] with [W ∈ R^{m×n}] frozen,
    [A ∈ R^{m×r}] and [B ∈ R^{r×n}] trainable, [r ≪ min(m,n)].  [A] starts
    at zero so fine-tuning begins exactly at the reference model. *)

type t = private {
  base : Tensor.t;  (** frozen [W], [m×n] *)
  a : Tensor.t;  (** [m×r], initialized to zero *)
  b : Tensor.t;  (** [r×n], random Gaussian *)
  rank : int;
}

val create : Dpoaf_util.Rng.t -> base:Tensor.t -> rank:int -> t
(** @raise Invalid_argument when [base] is not a matrix or [rank < 1]. *)

val forward :
  Autodiff.Tape.t ->
  t ->
  base_node:Autodiff.t ->
  a_node:Autodiff.t ->
  b_node:Autodiff.t ->
  Autodiff.t ->
  Autodiff.t
(** [forward tape l ~base_node ~a_node ~b_node x] computes
    [W x + A (B x)] on the tape.  The caller binds the three matrices as
    tape nodes ([base_node] typically a [const]). *)

val clone : t -> t
(** Deep copy of base and adapters. *)

val effective : t -> Tensor.t
(** Materialize [W + A·B] (for evaluation-only passes). *)

val params : prefix:string -> t -> Optim.param list
(** The trainable parameters [A] and [B] (not the base). *)
