(** Dense float tensors (rank ≤ 2 in practice).

    The numeric substrate for the language model and DPO trainer.  Data is
    a flat [float array] in row-major order. *)

type t = private { shape : int array; data : float array }

val create : int array -> float -> t
val zeros : int array -> t
val scalar : float -> t
val of_array : int array -> float array -> t
(** @raise Invalid_argument when the array length does not match the shape. *)

val init : int array -> (int -> float) -> t
(** [init shape f] fills by flat index. *)

val vector : float array -> t
val matrix : float array array -> t
(** @raise Invalid_argument on ragged input. *)

val numel : t -> int
val dims : t -> int array
val copy : t -> t

val get : t -> int -> float
(** Flat indexing. *)

val set : t -> int -> float -> unit

val get2 : t -> int -> int -> float
(** [get2 m i j] for a rank-2 tensor. *)

val set2 : t -> int -> int -> float -> unit

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
(** @raise Invalid_argument on shape mismatch. *)

val add_in_place : t -> t -> unit
(** [add_in_place dst src]: [dst += src]. *)

val scale_in_place : t -> float -> unit
val fill : t -> float -> unit

val sum : t -> float
val mean : t -> float
val max_abs : t -> float
val approx_equal : ?tol:float -> t -> t -> bool

val gaussian : Dpoaf_util.Rng.t -> int array -> stddev:float -> t
(** I.i.d. normal entries. *)

val pp : Format.formatter -> t -> unit
