type t = { base : Tensor.t; a : Tensor.t; b : Tensor.t; rank : int }

let create rng ~base ~rank =
  let m, n =
    match Tensor.dims base with
    | [| m; n |] -> (m, n)
    | _ -> invalid_arg "Lora.create: base must be a matrix"
  in
  if rank < 1 then invalid_arg "Lora.create: rank must be positive";
  {
    base;
    a = Tensor.zeros [| m; rank |];
    b = Tensor.gaussian rng [| rank; n |] ~stddev:(1.0 /. sqrt (float_of_int n));
    rank;
  }

let forward tape _l ~base_node ~a_node ~b_node x =
  let wx = Autodiff.matvec tape base_node x in
  let bx = Autodiff.matvec tape b_node x in
  let abx = Autodiff.matvec tape a_node bx in
  Autodiff.add tape wx abx

let clone l =
  { base = Tensor.copy l.base; a = Tensor.copy l.a; b = Tensor.copy l.b; rank = l.rank }

let effective l =
  let m, n =
    match Tensor.dims l.base with [| m; n |] -> (m, n) | _ -> assert false
  in
  let out = Tensor.copy l.base in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to l.rank - 1 do
        acc := !acc +. (Tensor.get2 l.a i k *. Tensor.get2 l.b k j)
      done;
      Tensor.set2 out i j (Tensor.get2 out i j +. !acc)
    done
  done;
  out

let params ~prefix l =
  [ Optim.param (prefix ^ ".lora_a") l.a; Optim.param (prefix ^ ".lora_b") l.b ]
