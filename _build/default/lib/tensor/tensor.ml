type t = { shape : int array; data : float array }

let total shape = Array.fold_left ( * ) 1 shape

let create shape v = { shape = Array.copy shape; data = Array.make (total shape) v }

let zeros shape = create shape 0.0

let scalar v = { shape = [||]; data = [| v |] }

let of_array shape data =
  if Array.length data <> total shape then
    invalid_arg "Tensor.of_array: size mismatch";
  { shape = Array.copy shape; data = Array.copy data }

let init shape f =
  { shape = Array.copy shape; data = Array.init (total shape) f }

let vector data = of_array [| Array.length data |] data

let matrix rows =
  let m = Array.length rows in
  if m = 0 then { shape = [| 0; 0 |]; data = [||] }
  else begin
    let n = Array.length rows.(0) in
    Array.iter
      (fun r -> if Array.length r <> n then invalid_arg "Tensor.matrix: ragged input")
      rows;
    init [| m; n |] (fun k -> rows.(k / n).(k mod n))
  end

let numel t = Array.length t.data
let dims t = Array.copy t.shape
let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }

let get t i = t.data.(i)
let set t i v = t.data.(i) <- v

let cols t =
  match t.shape with
  | [| _; n |] -> n
  | _ -> invalid_arg "Tensor: rank-2 access on non-matrix"

let get2 t i j = t.data.((i * cols t) + j)
let set2 t i j v = t.data.((i * cols t) + j) <- v

let map f t = { shape = Array.copy t.shape; data = Array.map f t.data }

let map2 f a b =
  if a.shape <> b.shape then invalid_arg "Tensor.map2: shape mismatch";
  { shape = Array.copy a.shape; data = Array.map2 f a.data b.data }

let add_in_place dst src =
  if dst.shape <> src.shape then invalid_arg "Tensor.add_in_place: shape mismatch";
  for i = 0 to Array.length dst.data - 1 do
    dst.data.(i) <- dst.data.(i) +. src.data.(i)
  done

let scale_in_place t c =
  for i = 0 to Array.length t.data - 1 do
    t.data.(i) <- t.data.(i) *. c
  done

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let sum t = Array.fold_left ( +. ) 0.0 t.data

let mean t = if numel t = 0 then 0.0 else sum t /. float_of_int (numel t)

let max_abs t = Array.fold_left (fun acc x -> Float.max acc (abs_float x)) 0.0 t.data

let approx_equal ?(tol = 1e-9) a b =
  a.shape = b.shape
  && Array.for_all2 (fun x y -> abs_float (x -. y) <= tol) a.data b.data

let gaussian rng shape ~stddev =
  init shape (fun _ -> stddev *. Dpoaf_util.Rng.gaussian rng)

let pp ppf t =
  Format.fprintf ppf "tensor%s[%s]"
    (Format.asprintf "(%s)"
       (String.concat "x" (Array.to_list (Array.map string_of_int t.shape))))
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.4g") t.data)
       |> fun l -> if List.length l > 8 then List.filteri (fun i _ -> i < 8) l @ [ "…" ] else l))
