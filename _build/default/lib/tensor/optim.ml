type param = { name : string; tensor : Tensor.t }

let param name tensor = { name; tensor }

let check_shapes p g =
  if Tensor.dims p.tensor <> Tensor.dims g then
    invalid_arg (Printf.sprintf "Optim: gradient shape mismatch for %s" p.name)

module Sgd = struct
  type t = {
    lr : float;
    momentum : float;
    velocity : (string, Tensor.t) Hashtbl.t;
  }

  let create ?(momentum = 0.0) ~lr () = { lr; momentum; velocity = Hashtbl.create 16 }

  let step t updates =
    List.iter
      (fun (p, g) ->
        check_shapes p g;
        let update =
          if t.momentum = 0.0 then Tensor.map (fun x -> t.lr *. x) g
          else begin
            let v =
              match Hashtbl.find_opt t.velocity p.name with
              | Some v -> v
              | None ->
                  let v = Tensor.zeros (Tensor.dims p.tensor) in
                  Hashtbl.add t.velocity p.name v;
                  v
            in
            for i = 0 to Tensor.numel v - 1 do
              Tensor.set v i ((t.momentum *. Tensor.get v i) +. Tensor.get g i)
            done;
            Tensor.map (fun x -> t.lr *. x) v
          end
        in
        for i = 0 to Tensor.numel p.tensor - 1 do
          Tensor.set p.tensor i (Tensor.get p.tensor i -. Tensor.get update i)
        done)
      updates
end

module Adam = struct
  type slot = { m : Tensor.t; v : Tensor.t }

  type t = {
    lr : float;
    beta1 : float;
    beta2 : float;
    eps : float;
    mutable step_count : int;
    slots : (string, slot) Hashtbl.t;
  }

  let create ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr () =
    { lr; beta1; beta2; eps; step_count = 0; slots = Hashtbl.create 16 }

  let step t updates =
    t.step_count <- t.step_count + 1;
    let bc1 = 1.0 -. (t.beta1 ** float_of_int t.step_count) in
    let bc2 = 1.0 -. (t.beta2 ** float_of_int t.step_count) in
    List.iter
      (fun (p, g) ->
        check_shapes p g;
        let slot =
          match Hashtbl.find_opt t.slots p.name with
          | Some s -> s
          | None ->
              let s =
                { m = Tensor.zeros (Tensor.dims p.tensor);
                  v = Tensor.zeros (Tensor.dims p.tensor) }
              in
              Hashtbl.add t.slots p.name s;
              s
        in
        for i = 0 to Tensor.numel p.tensor - 1 do
          let gi = Tensor.get g i in
          Tensor.set slot.m i ((t.beta1 *. Tensor.get slot.m i) +. ((1.0 -. t.beta1) *. gi));
          Tensor.set slot.v i
            ((t.beta2 *. Tensor.get slot.v i) +. ((1.0 -. t.beta2) *. gi *. gi));
          let m_hat = Tensor.get slot.m i /. bc1 in
          let v_hat = Tensor.get slot.v i /. bc2 in
          Tensor.set p.tensor i
            (Tensor.get p.tensor i -. (t.lr *. m_hat /. (sqrt v_hat +. t.eps)))
        done)
      updates
end

let clip_by_max_abs bound g =
  Tensor.map (fun x -> Float.max (-.bound) (Float.min bound x)) g
