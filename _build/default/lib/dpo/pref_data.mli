(** Preference pairs mined from verification-ranked responses (§4.3).

    From [m] scored responses to one prompt, every unordered pair with
    distinct scores yields one data point [(x, y_w, y_l)] — up to
    [C₂(m)] pairs per task, the response satisfying more specifications
    being preferred. *)

type scored = { tokens : int list; score : int }
(** A response (token sequence) and the number of specifications its
    controller satisfies. *)

type pair = {
  task_id : string;
  prompt : int list;
  chosen : int list;
  rejected : int list;
  chosen_score : int;
  rejected_score : int;
  grammar : Dpoaf_lm.Grammar.t;
  min_clauses : int;
  max_clauses : int;
}

val pairs_of_scored :
  task_id:string ->
  prompt:int list ->
  grammar:Dpoaf_lm.Grammar.t ->
  min_clauses:int ->
  max_clauses:int ->
  scored list ->
  pair list
(** All distinct-score pairs; duplicate token sequences are deduplicated
    first (keeping one representative each). *)

val count_possible : int -> int
(** [count_possible m = C₂(m)], the paper's bound on data points per task. *)
