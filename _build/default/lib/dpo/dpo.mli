(** Direct preference optimization (Rafailov et al. 2023) with the paper's
    metrics (§5.2).

    Per pair, with policy π_θ and frozen reference π_ref:

    [L = -log σ(β((log π_θ(y_w) − log π_ref(y_w)) −
                  (log π_θ(y_l) − log π_ref(y_l))))]

    - {b accuracy} is the fraction of pairs with
      [P(y_w|x,θ) > P(y_l|x,θ)];
    - {b marginal preference} is the mean of the β-free margin
      [(log π_θ(y_w) − log π_ref(y_w)) − (log π_θ(y_l) − log π_ref(y_l))]:
      zero at initialization, positive once the model prefers the chosen
      response more than the reference does. *)

type ref_logprobs = { ref_chosen : float; ref_rejected : float }

val reference_logprobs : Dpoaf_lm.Model.t -> Pref_data.pair -> ref_logprobs
(** Precompute the frozen reference terms for a pair. *)

val pair_loss_node :
  policy:Dpoaf_lm.Model.t ->
  bound:Dpoaf_lm.Model.bound ->
  beta:float ->
  ref_logprobs ->
  Pref_data.pair ->
  Dpoaf_tensor.Autodiff.t * float * float
(** [(loss node, policy logprob of chosen, of rejected)] — the floats are
    read from the forward pass for metric computation. *)

type stats = { loss : float; accuracy : float; margin : float }

val evaluate :
  policy:Dpoaf_lm.Model.t ->
  reference:Dpoaf_lm.Model.t ->
  beta:float ->
  Pref_data.pair list ->
  stats
(** Metrics over a pair set without touching parameters. *)
