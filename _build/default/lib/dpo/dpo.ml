module Model = Dpoaf_lm.Model
module Autodiff = Dpoaf_tensor.Autodiff
module Tensor = Dpoaf_tensor.Tensor

type ref_logprobs = { ref_chosen : float; ref_rejected : float }

let logprob model (pair : Pref_data.pair) tokens =
  Model.response_logprob model ~prompt:pair.Pref_data.prompt
    ~grammar:pair.Pref_data.grammar ~min_clauses:pair.Pref_data.min_clauses
    ~max_clauses:pair.Pref_data.max_clauses ~tokens

let reference_logprobs reference pair =
  {
    ref_chosen = logprob reference pair pair.Pref_data.chosen;
    ref_rejected = logprob reference pair pair.Pref_data.rejected;
  }

let logprob_node policy bound (pair : Pref_data.pair) tokens =
  Model.response_logprob_node policy bound ~prompt:pair.Pref_data.prompt
    ~grammar:pair.Pref_data.grammar ~min_clauses:pair.Pref_data.min_clauses
    ~max_clauses:pair.Pref_data.max_clauses ~tokens

let pair_loss_node ~policy ~bound ~beta refs pair =
  let tape = Model.tape_of_bound bound in
  let lp_w = logprob_node policy bound pair pair.Pref_data.chosen in
  let lp_l = logprob_node policy bound pair pair.Pref_data.rejected in
  (* x = β((lp_w − lp_l) − (ref_w − ref_l)); loss = softplus(−x) *)
  let diff = Autodiff.sub tape lp_w lp_l in
  let shift = Autodiff.const tape (Tensor.scalar (refs.ref_chosen -. refs.ref_rejected)) in
  let x = Autodiff.scale tape beta (Autodiff.sub tape diff shift) in
  let loss = Autodiff.softplus tape (Autodiff.neg tape x) in
  ( loss,
    Tensor.get (Autodiff.value lp_w) 0,
    Tensor.get (Autodiff.value lp_l) 0 )

type stats = { loss : float; accuracy : float; margin : float }

let evaluate ~policy ~reference ~beta pairs =
  match pairs with
  | [] -> { loss = 0.0; accuracy = 0.0; margin = 0.0 }
  | _ ->
      let n = float_of_int (List.length pairs) in
      let totals =
        List.fold_left
          (fun (l, a, m) pair ->
            let refs = reference_logprobs reference pair in
            let lp_w = logprob policy pair pair.Pref_data.chosen in
            let lp_l = logprob policy pair pair.Pref_data.rejected in
            let margin = lp_w -. refs.ref_chosen -. (lp_l -. refs.ref_rejected) in
            let x = beta *. margin in
            let loss = Float.max (-.x) 0.0 +. log1p (exp (-.abs_float x)) in
            (l +. loss, (if lp_w > lp_l then a +. 1.0 else a), m +. margin))
          (0.0, 0.0, 0.0) pairs
      in
      let l, a, m = totals in
      { loss = l /. n; accuracy = a /. n; margin = m /. n }
