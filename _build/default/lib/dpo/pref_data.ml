type scored = { tokens : int list; score : int }

type pair = {
  task_id : string;
  prompt : int list;
  chosen : int list;
  rejected : int list;
  chosen_score : int;
  rejected_score : int;
  grammar : Dpoaf_lm.Grammar.t;
  min_clauses : int;
  max_clauses : int;
}

let dedup scored =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun s ->
      if Hashtbl.mem seen s.tokens then false
      else begin
        Hashtbl.add seen s.tokens ();
        true
      end)
    scored

let pairs_of_scored ~task_id ~prompt ~grammar ~min_clauses ~max_clauses scored =
  let distinct = dedup scored in
  let rec combos = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ combos rest
  in
  List.filter_map
    (fun (a, b) ->
      if a.score = b.score then None
      else
        let w, l = if a.score > b.score then (a, b) else (b, a) in
        Some
          {
            task_id;
            prompt;
            chosen = w.tokens;
            rejected = l.tokens;
            chosen_score = w.score;
            rejected_score = l.score;
            grammar;
            min_clauses;
            max_clauses;
          })
    (combos distinct)

let count_possible m = m * (m - 1) / 2
