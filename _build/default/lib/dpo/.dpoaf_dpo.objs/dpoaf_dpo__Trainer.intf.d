lib/dpo/trainer.mli: Dpoaf_lm Pref_data
