lib/dpo/reinforce.ml: Dpoaf_lm Dpoaf_tensor Dpoaf_util List
