lib/dpo/trainer.ml: Array Dpo Dpoaf_lm Dpoaf_tensor Dpoaf_util List
