lib/dpo/pref_data.ml: Dpoaf_lm Hashtbl List
