lib/dpo/reinforce.mli: Dpoaf_lm
