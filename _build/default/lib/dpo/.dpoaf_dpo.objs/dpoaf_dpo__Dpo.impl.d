lib/dpo/dpo.ml: Dpoaf_lm Dpoaf_tensor Float List Pref_data
