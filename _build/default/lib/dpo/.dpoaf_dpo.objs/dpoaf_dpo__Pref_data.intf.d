lib/dpo/pref_data.mli: Dpoaf_lm
