lib/dpo/dpo.mli: Dpoaf_lm Dpoaf_tensor Pref_data
