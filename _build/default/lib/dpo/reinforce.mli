(** Policy-gradient fine-tuning from verifier rewards — the RL-style
    baseline DPO replaces (cf. the paper's §2: RLHF learns a reward model
    from human preferences; here the model checker {e is} the reward).

    Each epoch samples responses on-policy, scores them with the automated
    verifier, and ascends the REINFORCE gradient of the mean reward with a
    per-task mean baseline:

    [∇ J = E[(r − b̄_task) ∇ log π_θ(y|x)]]

    Only the LoRA adapter is trained, as in the DPO path, so the two
    fine-tuning strategies are directly comparable (bench section
    [abl-rl]). *)

type task = {
  prompt : int list;
  grammar : Dpoaf_lm.Grammar.t;
  min_clauses : int;
  max_clauses : int;
  reward : int list -> float;
      (** e.g. (specifications satisfied)/15 from the verifier *)
}

type config = {
  lr : float;
  epochs : int;
  samples_per_task : int;
  temperature : float;
}

val default_config : config
(** lr 2e-3, 100 epochs, 8 samples per task, temperature 1. *)

type epoch_stats = { epoch : int; mean_reward : float }

type run = { stats : epoch_stats list; final : Dpoaf_lm.Model.t }

val train : reference:Dpoaf_lm.Model.t -> tasks:task list -> config -> seed:int -> run
(** Fine-tune a clone of [reference]; the reference itself is untouched. *)
