lib/pipeline/corpus.ml: Array Dpoaf_driving Dpoaf_lm Dpoaf_util List
