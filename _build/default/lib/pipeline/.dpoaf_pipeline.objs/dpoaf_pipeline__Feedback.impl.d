lib/pipeline/feedback.ml: Corpus Dpoaf_automata Dpoaf_driving Dpoaf_lang Hashtbl List
