lib/pipeline/dpoaf.ml: Corpus Dpoaf_dpo Dpoaf_driving Dpoaf_lm Dpoaf_util Feedback List
