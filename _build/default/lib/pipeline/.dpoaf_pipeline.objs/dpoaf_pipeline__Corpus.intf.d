lib/pipeline/corpus.mli: Dpoaf_driving Dpoaf_lm Dpoaf_util
