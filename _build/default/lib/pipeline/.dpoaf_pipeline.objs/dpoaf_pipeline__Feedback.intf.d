lib/pipeline/feedback.mli: Corpus Dpoaf_automata
