lib/pipeline/dpoaf.mli: Corpus Dpoaf_dpo Dpoaf_driving Dpoaf_lm Dpoaf_util Feedback
