module Evaluate = Dpoaf_driving.Evaluate
module Models = Dpoaf_driving.Models
module Tasks = Dpoaf_driving.Tasks

type t = {
  model : Dpoaf_automata.Ts.t;
  cache : (string * int list * bool, int) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create ?model () =
  let model = match model with Some m -> m | None -> Models.universal () in
  { model; cache = Hashtbl.create 256; hits = 0; misses = 0 }

let score_steps t ~task_id:_ steps =
  Evaluate.count_specs_of_steps ~model:t.model steps

let count_specs_of_clauses t clauses =
  let controller = Dpoaf_lang.Glm2fsa.controller ~name:"response" clauses in
  Evaluate.count_specs ~model:t.model controller

let cached t key compute =
  match Hashtbl.find_opt t.cache key with
  | Some score ->
      t.hits <- t.hits + 1;
      score
  | None ->
      t.misses <- t.misses + 1;
      let score = compute () in
      Hashtbl.add t.cache key score;
      score

let clauses_of_tokens corpus tokens =
  let steps = Corpus.steps_of_tokens corpus tokens in
  fst (Dpoaf_lang.Step_parser.parse_steps (Evaluate.lexicon ()) steps)

let score_tokens t ~corpus setup tokens =
  cached t (setup.Corpus.task.Tasks.id, tokens, false) (fun () ->
      let steps = Corpus.steps_of_tokens corpus tokens in
      score_steps t ~task_id:setup.Corpus.task.Tasks.id steps)

let score_tokens_hardened t ~corpus setup tokens =
  cached t (setup.Corpus.task.Tasks.id, tokens, true) (fun () ->
      let clauses = clauses_of_tokens corpus tokens in
      let hardened =
        Dpoaf_lang.Repair.harden
          ~specs:(List.map snd Dpoaf_driving.Specs.all)
          ~all_actions:Dpoaf_driving.Vocab.actions clauses
      in
      count_specs_of_clauses t hardened)

let cache_stats t = (t.hits, t.misses)
