(** Shared vocabulary, per-task grammars and the synthetic pre-training
    corpus — the ingredients of the "pre-trained language model".

    The corpus mixes careful, partially careful and careless responses in
    fixed proportions, so that the MLE-trained model reproduces the paper's
    starting point: plausible instructions that satisfy roughly 60% of the
    specifications before fine-tuning. *)

type task_setup = {
  task : Dpoaf_driving.Tasks.t;
  prompt : int list;  (** encoded task query *)
  grammar : Dpoaf_lm.Grammar.t;
  min_clauses : int;
  max_clauses : int;
}

type t = private { vocab : Dpoaf_lm.Vocab.t; setups : task_setup list }

val build : unit -> t
(** One setup per task in {!Dpoaf_driving.Tasks.all}; the vocabulary covers
    all prompts and candidate steps. *)

val setup : t -> Dpoaf_driving.Tasks.t -> task_setup
(** @raise Not_found for tasks outside the setup list. *)

val setups_of_split : t -> Dpoaf_driving.Tasks.split -> task_setup list

val steps_of_tokens : t -> int list -> string list
(** Decode a response into step sentences. *)

val pretraining_examples :
  t -> Dpoaf_util.Rng.t -> per_task:int -> Dpoaf_lm.Pretrain.example list
(** Mixed-quality responses for every task (good 35% / risky 40% /
    bad 25% final steps, with 1–2 observation steps in front). *)

val pretrained_model :
  ?config:Dpoaf_lm.Model.config ->
  ?per_task:int ->
  ?epochs:int ->
  Dpoaf_util.Rng.t ->
  t ->
  Dpoaf_lm.Model.t
(** Create and MLE-train the pre-trained model. *)
