(** Structured representation of one instruction step.

    The semantic parser (GLM2FSA's first stage) turns each textual step of a
    language-model response into a clause; {!Glm2fsa} then compiles the
    clause list into an FSA controller. *)

type condition =
  | Cond_atom of string  (** proposition must hold *)
  | Cond_not of string  (** proposition must be absent *)
  | Cond_and of condition * condition
  | Cond_or of condition * condition
      (** produced by specification-guided repair ({!Repair}), not by the
          step parser *)

type t =
  | Observe of string
      (** look at a proposition and move on ("observe the traffic light") *)
  | If_act of condition * string
      (** if the condition holds, perform the action and advance; otherwise
          hold position ("if the green traffic light is on, go straight") *)
  | If_advance of condition
      (** if the condition holds, proceed to the next step; otherwise hold
          ("if no car from left, check the pedestrian at right") *)
  | If_goto of condition * int
      (** conditional jump to a 1-based step number; falls through to the
          next step otherwise *)
  | Act of string  (** unconditional action ("turn right") *)

val condition_atoms : condition -> string list
val atoms : t -> string list
(** Propositions referenced by the clause (not actions). *)

val action : t -> string option

val guard_of_condition : condition -> Dpoaf_automata.Fsa.guard

val eval_condition : condition -> Dpoaf_logic.Symbol.t -> bool

val pp_condition : Format.formatter -> condition -> unit
val pp : Format.formatter -> t -> unit
(** Paper-style bracketed rendering, e.g.
    [<if> <green traffic light>, <go straight>]. *)

val to_string : t -> string
