(** Controller construction from parsed clauses (GLM2FSA, Yang et al. 2022).

    One FSA state is built per clause; the state of the first clause is
    initial.  Conditional clauses wait in place (emitting [stop]) until
    their condition holds; advancing past the final clause restarts the
    procedure from the first state, so controllers act forever, as required
    by verification over infinite traces.

    The "no-operation" output ε is identified with the [stop] action: the
    vehicle holds position whenever the controller is observing or
    waiting. *)

val stop_action : string

val controller : name:string -> Clause.t list -> Dpoaf_automata.Fsa.t
(** Compile clauses to a controller.  An empty clause list yields the
    single-state always-[stop] controller. *)

val of_steps :
  name:string ->
  Lexicon.t ->
  string list ->
  Dpoaf_automata.Fsa.t * Step_parser.stats
(** Parse textual steps and compile them: the full GLM2FSA pipeline. *)
