module Fsa = Dpoaf_automata.Fsa

type condition =
  | Cond_atom of string
  | Cond_not of string
  | Cond_and of condition * condition
  | Cond_or of condition * condition

type t =
  | Observe of string
  | If_act of condition * string
  | If_advance of condition
  | If_goto of condition * int
  | Act of string

let rec condition_atoms = function
  | Cond_atom a | Cond_not a -> [ a ]
  | Cond_and (a, b) | Cond_or (a, b) -> condition_atoms a @ condition_atoms b

let atoms = function
  | Observe a -> [ a ]
  | If_act (c, _) | If_advance c | If_goto (c, _) -> condition_atoms c
  | Act _ -> []

let action = function
  | If_act (_, a) | Act a -> Some a
  | Observe _ | If_advance _ | If_goto _ -> None

let rec guard_of_condition = function
  | Cond_atom a -> Fsa.Gatom a
  | Cond_not a -> Fsa.Gnot (Fsa.Gatom a)
  | Cond_and (a, b) -> Fsa.Gand (guard_of_condition a, guard_of_condition b)
  | Cond_or (a, b) -> Fsa.Gor (guard_of_condition a, guard_of_condition b)

let eval_condition c sym = Fsa.eval_guard (guard_of_condition c) sym

let rec pp_condition ppf = function
  | Cond_atom a -> Format.fprintf ppf "<%s>" a
  | Cond_not a -> Format.fprintf ppf "<no %s>" a
  | Cond_and (a, b) -> Format.fprintf ppf "%a %a" pp_condition a pp_condition b
  | Cond_or (a, b) -> Format.fprintf ppf "(%a or %a)" pp_condition a pp_condition b

let pp ppf = function
  | Observe a -> Format.fprintf ppf "<observe %s>" a
  | If_act (c, act) -> Format.fprintf ppf "<if> %a, <%s>" pp_condition c act
  | If_advance c -> Format.fprintf ppf "<if> %a, <check next>" pp_condition c
  | If_goto (c, k) -> Format.fprintf ppf "<if> %a, <goto step %d>" pp_condition c k
  | Act a -> Format.fprintf ppf "<%s>" a

let to_string c = Format.asprintf "%a" pp c
