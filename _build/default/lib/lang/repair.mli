(** Specification-guided controller repair — the "post-hoc hardening"
    baseline against which DPO-AF's fine-tuning is compared.

    For each invariant specification [□ body] whose body is purely
    propositional, and for each action [a], the residual obligation when
    the controller emits exactly [a] is [body] with [a ↦ true] and every
    other action atom [↦ false] — a propositional constraint over
    environment propositions.  {!harden} conjoins that constraint onto the
    guard of every clause that emits [a], so the hardened controller waits
    whenever acting would violate an invariant.

    This fixes the invariant (safety) rules of individual controllers but,
    unlike fine-tuning, does not improve the {e generator}: newly sampled
    responses are as careless as before, alignment quality does not
    improve, and non-invariant (liveness) specifications are untouched.
    The bench's [abl-repair] section quantifies this. *)

val residual_condition :
  Dpoaf_logic.Ltl.t list ->
  action:string ->
  all_actions:string list ->
  Clause.condition option
(** The conjunction over all propositional invariants of the residual
    obligation for emitting [action].  [None] when the obligation is
    trivially true.  Specifications with temporal operators inside [□] (or
    with no leading [□]) contribute nothing.  Returns a condition that is
    unsatisfiable ([Cond_and (Cond_atom p, Cond_not p)]-shaped) when the
    action is forbidden outright. *)

val harden :
  specs:Dpoaf_logic.Ltl.t list ->
  all_actions:string list ->
  Clause.t list ->
  Clause.t list
(** Strengthen every action-emitting clause ([If_act] and [Act]) with the
    action's residual obligation; [Act a] becomes [If_act (residual, a)].
    The [stop] action is never hardened (stopping must stay available). *)
