module Ltl = Dpoaf_logic.Ltl

exception Not_propositional

(* The never-true proposition: no world model labels a state with it. *)
let never = "__never__"

(* Partial evaluation of a propositional formula under a partial atom
   assignment, with eager simplification. *)
let rec peval assign f =
  match f with
  | Ltl.True | Ltl.False -> f
  | Ltl.Atom a -> (
      match assign a with
      | Some true -> Ltl.True
      | Some false -> Ltl.False
      | None -> f)
  | Ltl.Not g -> (
      match peval assign g with
      | Ltl.True -> Ltl.False
      | Ltl.False -> Ltl.True
      | g' -> Ltl.Not g')
  | Ltl.And (a, b) -> (
      match (peval assign a, peval assign b) with
      | Ltl.False, _ | _, Ltl.False -> Ltl.False
      | Ltl.True, x | x, Ltl.True -> x
      | x, y -> Ltl.And (x, y))
  | Ltl.Or (a, b) -> (
      match (peval assign a, peval assign b) with
      | Ltl.True, _ | _, Ltl.True -> Ltl.True
      | Ltl.False, x | x, Ltl.False -> x
      | x, y -> Ltl.Or (x, y))
  | Ltl.Implies (a, b) -> peval assign (Ltl.Or (Ltl.Not a, b))
  | Ltl.Next _ | Ltl.Until _ | Ltl.Release _ | Ltl.Eventually _ | Ltl.Always _ ->
      raise Not_propositional

(* Propositional NNF formula → clause condition. *)
let rec cond_of_prop = function
  | Ltl.Atom a -> Clause.Cond_atom a
  | Ltl.Not (Ltl.Atom a) -> Clause.Cond_not a
  | Ltl.And (a, b) -> Clause.Cond_and (cond_of_prop a, cond_of_prop b)
  | Ltl.Or (a, b) -> Clause.Cond_or (cond_of_prop a, cond_of_prop b)
  | Ltl.True -> Clause.Cond_not never
  | Ltl.False -> Clause.Cond_atom never
  | _ -> raise Not_propositional

let residual_condition specs ~action ~all_actions =
  let assign atom =
    if atom = action then Some true
    else if List.mem atom all_actions then Some false
    else None
  in
  let residuals =
    List.filter_map
      (fun spec ->
        match spec with
        | Ltl.Always body -> (
            match peval assign body with
            | exception Not_propositional -> None
            | Ltl.True -> None
            | reduced -> Some (cond_of_prop (Ltl.nnf reduced)))
        | _ -> None)
      specs
  in
  match residuals with
  | [] -> None
  | c :: rest -> Some (List.fold_left (fun acc d -> Clause.Cond_and (acc, d)) c rest)

let harden ~specs ~all_actions clauses =
  let residual action = residual_condition specs ~action ~all_actions in
  List.map
    (fun clause ->
      match clause with
      | Clause.Observe _ | Clause.If_advance _ | Clause.If_goto _ -> clause
      | Clause.If_act (cond, a) when a <> Glm2fsa.stop_action -> (
          match residual a with
          | None -> clause
          | Some extra -> Clause.If_act (Clause.Cond_and (cond, extra), a))
      | Clause.Act a when a <> Glm2fsa.stop_action -> (
          match residual a with
          | None -> clause
          | Some extra -> Clause.If_act (extra, a))
      | Clause.If_act _ | Clause.Act _ -> clause)
    clauses
