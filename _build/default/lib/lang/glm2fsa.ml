module Fsa = Dpoaf_automata.Fsa
module Symbol = Dpoaf_logic.Symbol

let stop_action = "stop"

let stop_sym = Symbol.singleton stop_action

let controller ~name clauses =
  match clauses with
  | [] ->
      Fsa.make ~name ~n_states:1 ~init:0
        ~transitions:[ { Fsa.src = 0; guard = Fsa.Gtrue; action = stop_sym; dst = 0 } ]
        ()
  | _ ->
      let n = List.length clauses in
      let next i = (i + 1) mod n in
      (* out-of-range step numbers restart the procedure *)
      let clamp k = if k >= 1 && k <= n then k - 1 else 0 in
      let transitions =
        List.concat
          (List.mapi
             (fun i clause ->
               match clause with
               | Clause.Observe _ ->
                   [ { Fsa.src = i; guard = Fsa.Gtrue; action = stop_sym; dst = next i } ]
               | Clause.Act a ->
                   [
                     {
                       Fsa.src = i;
                       guard = Fsa.Gtrue;
                       action = Symbol.singleton a;
                       dst = next i;
                     };
                   ]
               | Clause.If_act (c, a) ->
                   let g = Clause.guard_of_condition c in
                   [
                     { Fsa.src = i; guard = g; action = Symbol.singleton a; dst = next i };
                     { Fsa.src = i; guard = Fsa.Gnot g; action = stop_sym; dst = i };
                   ]
               | Clause.If_advance c ->
                   let g = Clause.guard_of_condition c in
                   [
                     { Fsa.src = i; guard = g; action = stop_sym; dst = next i };
                     { Fsa.src = i; guard = Fsa.Gnot g; action = stop_sym; dst = i };
                   ]
               | Clause.If_goto (c, k) ->
                   let g = Clause.guard_of_condition c in
                   [
                     { Fsa.src = i; guard = g; action = stop_sym; dst = clamp k };
                     { Fsa.src = i; guard = Fsa.Gnot g; action = stop_sym; dst = next i };
                   ])
             clauses)
      in
      Fsa.make ~name ~n_states:n ~init:0 ~transitions ()

let of_steps ~name lexicon steps =
  let clauses, stats = Step_parser.parse_steps lexicon steps in
  (controller ~name clauses, stats)
