module Strext = Dpoaf_util.Strext

type kind = Proposition | Action

type quality = Exact | Synonym | Fuzzy of float

type t = {
  props : string list;
  actions : string list;
  prop_synonyms : (string, string) Hashtbl.t;  (* normalized phrase -> canonical *)
  action_synonyms : (string, string) Hashtbl.t;
}

let stopwords =
  [
    "the"; "a"; "an"; "of"; "state"; "is"; "are"; "on"; "off"; "your"; "you";
    "for"; "to"; "and"; "then"; "it"; "there"; "at"; "in"; "present"; "please";
  ]

let normalize phrase =
  Strext.lowercase_words phrase
  |> List.filter (fun w -> not (List.mem w stopwords))

let norm_key phrase = Strext.join (normalize phrase)

let create ~props ~actions =
  {
    props;
    actions;
    prop_synonyms = Hashtbl.create 32;
    action_synonyms = Hashtbl.create 32;
  }

let vocabulary t = function Proposition -> t.props | Action -> t.actions

let synonyms t = function
  | Proposition -> t.prop_synonyms
  | Action -> t.action_synonyms

let add_synonym t kind ~canonical ~phrase =
  if not (List.mem canonical (vocabulary t kind)) then
    invalid_arg (Printf.sprintf "Lexicon.add_synonym: unknown canonical %s" canonical);
  Hashtbl.replace (synonyms t kind) (norm_key phrase) canonical

let overlap_score ~phrase_words ~canon_words =
  let inter =
    List.filter (fun w -> List.mem w phrase_words) canon_words |> List.length
  in
  if canon_words = [] then 0.0
  else
    let recall = float_of_int inter /. float_of_int (List.length canon_words) in
    let precision =
      if phrase_words = [] then 0.0
      else float_of_int inter /. float_of_int (List.length phrase_words)
    in
    if recall +. precision = 0.0 then 0.0
    else 2.0 *. recall *. precision /. (recall +. precision)

let align t kind phrase =
  let key = norm_key phrase in
  let vocab = vocabulary t kind in
  match List.find_opt (fun c -> norm_key c = key) vocab with
  | Some c -> Some (c, Exact)
  | None -> (
      match Hashtbl.find_opt (synonyms t kind) key with
      | Some c -> Some (c, Synonym)
      | None ->
          let phrase_words = normalize phrase in
          let scored =
            List.map
              (fun c ->
                (c, overlap_score ~phrase_words ~canon_words:(normalize c)))
              vocab
          in
          let best =
            List.fold_left
              (fun acc (c, s) ->
                match acc with
                | Some (_, s0) when s0 >= s -> acc
                | _ -> Some (c, s))
              None scored
          in
          match best with
          | Some (c, s) when s >= 0.5 -> Some (c, Fuzzy s)
          | _ -> None)

let negation_markers = [ "no"; "not"; "without" ]

let align_condition_phrase t phrase =
  let words = Strext.lowercase_words phrase in
  let negated = List.exists (fun w -> List.mem w negation_markers) words in
  let cleaned =
    List.filter (fun w -> not (List.mem w negation_markers)) words |> Strext.join
  in
  match align t Proposition cleaned with
  | Some (c, q) -> Some (c, negated, q)
  | None -> None
