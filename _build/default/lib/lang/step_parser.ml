module Strext = Dpoaf_util.Strext

type outcome =
  | Parsed of Clause.t
  | Degraded of Clause.t * string
  | Failed of string

type stats = {
  total : int;
  exact : int;
  fuzzy : int;
  degraded : int;
  failed : int;
}

let is_number w = w <> "" && String.for_all (fun c -> c >= '0' && c <= '9') w

(* Strip a leading enumeration marker such as "1." (already depunctuated). *)
let strip_step_number words =
  match words with n :: rest when is_number n -> rest | _ -> words

let observe_verbs = [ "observe"; "watch"; "look"; "monitor"; "check" ]
let wait_verbs = [ "wait" ]

let action_prefixes =
  [
    [ "execute"; "action" ];
    [ "execute" ];
    [ "proceed"; "to" ];
    [ "start"; "to" ];
    [ "begin"; "to" ];
    [ "start" ];
    [ "then" ];
  ]

let rec strip_prefixes prefixes words =
  match prefixes with
  | [] -> words
  | p :: rest -> (
      match Strext.strip_prefix ~prefix:p words with
      | Some stripped when stripped <> [] -> strip_prefixes action_prefixes stripped
      | _ -> strip_prefixes rest words)

(* Split a word list at the first occurrence of a separator word. *)
let split_at_word sep words =
  let rec go acc = function
    | [] -> None
    | w :: rest when w = sep -> Some (List.rev acc, rest)
    | w :: rest -> go (w :: acc) rest
  in
  go [] words

let quality_is_fuzzy = function Lexicon.Fuzzy _ -> true | _ -> false

(* Parse a condition phrase, possibly with "and"-joined conjuncts. *)
let parse_condition lexicon words =
  let conjunct_phrases =
    let rec split acc current = function
      | [] -> List.rev (List.rev current :: acc)
      | "and" :: rest -> split (List.rev current :: acc) [] rest
      | w :: rest -> split acc (w :: current) rest
    in
    split [] [] words |> List.filter (fun ws -> ws <> [])
  in
  let aligned =
    List.map
      (fun ws -> Lexicon.align_condition_phrase lexicon (Strext.join ws))
      conjunct_phrases
  in
  if List.exists (fun o -> o = None) aligned || aligned = [] then None
  else
    let parts = List.filter_map Fun.id aligned in
    let fuzzy = List.exists (fun (_, _, q) -> quality_is_fuzzy q) parts in
    let conds =
      List.map
        (fun (c, negated, _) ->
          if negated then Clause.Cond_not c else Clause.Cond_atom c)
        parts
    in
    match conds with
    | [] -> None
    | c :: rest ->
        Some (List.fold_left (fun acc d -> Clause.Cond_and (acc, d)) c rest, fuzzy)

let align_action lexicon words =
  match Lexicon.align lexicon Lexicon.Action (Strext.join words) with
  | Some _ as hit -> hit
  | None ->
      let stripped = strip_prefixes action_prefixes words in
      if stripped == words then None
      else Lexicon.align lexicon Lexicon.Action (Strext.join stripped)

let align_observed lexicon words =
  (* drop the leading verb (and particles) before aligning the object *)
  let rec drop_verb = function
    | w :: rest
      when List.mem w observe_verbs || List.mem w [ "for"; "at"; "straight"; "ahead" ]
      ->
        drop_verb rest
    | ws -> ws
  in
  Lexicon.align lexicon Lexicon.Proposition (Strext.join (drop_verb words))

let is_goto words =
  match words with
  | "go" :: "to" :: "step" :: k :: _
  | "return" :: "to" :: "step" :: k :: _
  | "goto" :: "step" :: k :: _ ->
      int_of_string_opt k
  | _ -> None

(* Parse the consequent of an "if" step. *)
let parse_consequent lexicon words =
  match is_goto words with
  | Some k -> Some (`Goto k, false)
  | None -> (
      match words with
      | v :: _ when List.mem v observe_verbs ->
          (* "check the pedestrian at right": advancing is enough — the next
             step tests the observed proposition itself. *)
          Some (`Advance, false)
      | _ -> (
          match align_action lexicon words with
          | Some (a, q) -> Some (`Act a, quality_is_fuzzy q)
          | None -> None))

(* Words that can begin the consequent of a conditional step; used to
   recover the condition/consequent boundary when the text carries no
   punctuation (e.g. after detokenization). *)
let consequent_starters =
  [
    "execute"; "check"; "observe"; "then"; "proceed"; "goto"; "go"; "turn";
    "stop"; "wait"; "start"; "begin"; "make"; "come"; "halt"; "brake";
    "drive"; "cross"; "move";
  ]

(* Returns the outcome plus whether fuzzy alignment was needed anywhere. *)
let parse_step_ex lexicon sentence =
  let words = strip_step_number (Strext.lowercase_words sentence) in
  match words with
  | [] -> (Failed "empty step", false)
  | ("if" | "when" | "once") :: rest -> (
      let take k = List.filteri (fun i _ -> i < k) rest in
      let drop k = List.filteri (fun i _ -> i >= k) rest in
      let split_ok (cond_words, cons_words) =
        if parse_condition lexicon cond_words <> None
           && parse_consequent lexicon cons_words <> None
        then Some (cond_words, cons_words)
        else None
      in
      let split =
        match split_at_word "," rest with
        | Some _ as s -> s
        | None -> (
            match split_at_word "then" rest with
            | Some _ as s -> s
            | None -> (
                match String.index_opt sentence ',' with
                | Some i ->
                    let cond_part = String.sub sentence 0 i in
                    let cons_part =
                      String.sub sentence (i + 1) (String.length sentence - i - 1)
                    in
                    let cond_words =
                      match strip_step_number (Strext.lowercase_words cond_part) with
                      | "if" :: c -> c
                      | c -> c
                    in
                    Some (cond_words, Strext.lowercase_words cons_part)
                | None ->
                    (* no punctuation: try boundaries at consequent-starting
                       words first, then every split point (longest
                       condition first, to keep "and" conjuncts intact) *)
                    let n = List.length rest in
                    let starter_splits =
                      List.filter_map
                        (fun i ->
                          if i >= 1 && List.mem (List.nth rest i) consequent_starters
                          then split_ok (take i, drop i)
                          else None)
                        (List.init n Fun.id)
                    in
                    let fallback_splits () =
                      List.filter_map
                        (fun k -> split_ok (take k, drop k))
                        (List.init (max 0 (n - 1)) (fun j -> n - 1 - j))
                    in
                    (match starter_splits with
                    | s :: _ -> Some s
                    | [] -> (
                        match fallback_splits () with s :: _ -> Some s | [] -> None))))
      in
      match split with
      | None -> (
          (* The condition cannot be aligned anywhere.  If an action is
             still recognizable in some suffix, keep it unguarded — the
             dangerous degradation the fine-tuning is meant to eliminate. *)
          let n = List.length rest in
          let salvaged =
            List.find_map
              (fun i ->
                if i < 1 then None
                else
                  match parse_consequent lexicon (drop i) with
                  | Some (`Act a, f) -> Some (a, f)
                  | _ -> None)
              (List.init n Fun.id)
          in
          match salvaged with
          | Some (a, f) ->
              (Degraded (Clause.Act a, "condition could not be aligned"), f)
          | None -> (Failed "conditional step without a consequent", false))
      | Some (cond_words, cons_words) -> (
          let cond = parse_condition lexicon cond_words in
          let cons = parse_consequent lexicon cons_words in
          match (cond, cons) with
          | Some (c, f1), Some (`Act a, f2) -> (Parsed (Clause.If_act (c, a)), f1 || f2)
          | Some (c, f1), Some (`Advance, f2) -> (Parsed (Clause.If_advance c), f1 || f2)
          | Some (c, f1), Some (`Goto k, f2) -> (Parsed (Clause.If_goto (c, k)), f1 || f2)
          | None, Some (`Act a, f2) ->
              (* dangerous degradation: condition lost, action kept *)
              (Degraded (Clause.Act a, "condition could not be aligned"), f2)
          | None, Some ((`Advance | `Goto _), _) ->
              (Failed "condition could not be aligned", false)
          | _, None -> (Failed "consequent could not be aligned", false)))
  | v :: _ when List.mem v wait_verbs -> (
      (* "wait for the left-turn light to turn green" *)
      let cond_words =
        List.filter
          (fun w -> not (List.mem w [ "wait"; "for"; "until"; "turn"; "to" ]))
          words
      in
      match parse_condition lexicon cond_words with
      | Some (c, f) -> (Parsed (Clause.If_advance c), f)
      | None -> (Failed "wait condition could not be aligned", false))
  | v :: _ when List.mem v observe_verbs -> (
      match align_observed lexicon words with
      | Some (p, q) -> (Parsed (Clause.Observe p), quality_is_fuzzy q)
      | None -> (
          (* "check for oncoming traffic" might still align as an action *)
          match align_action lexicon words with
          | Some (a, q) ->
              (Degraded (Clause.Act a, "observation read as action"), quality_is_fuzzy q)
          | None -> (Failed "observed object could not be aligned", false)))
  | _ -> (
      match align_action lexicon words with
      | Some (a, q) ->
          if quality_is_fuzzy q then
            (Degraded (Clause.Act a, "fuzzy action alignment"), true)
          else (Parsed (Clause.Act a), false)
      | None -> (
          match align_observed lexicon words with
          | Some (p, q) ->
              ( Degraded (Clause.Observe p, "bare proposition read as observation"),
                quality_is_fuzzy q )
          | None -> (Failed "step could not be aligned", false)))

let parse_step lexicon sentence = fst (parse_step_ex lexicon sentence)

let parse_steps lexicon steps =
  let results = List.map (parse_step_ex lexicon) steps in
  let clauses =
    List.filter_map
      (function Parsed c, _ | Degraded (c, _), _ -> Some c | Failed _, _ -> None)
      results
  in
  let count pred = List.length (List.filter pred results) in
  let stats =
    {
      total = List.length steps;
      exact = count (function Parsed _, f -> not f | _ -> false);
      fuzzy = count (fun (_, f) -> f);
      degraded = count (function Degraded _, _ -> true | _ -> false);
      failed = count (function Failed _, _ -> true | _ -> false);
    }
  in
  (clauses, stats)
