(** Semantic parsing of textual instruction steps into {!Clause.t}.

    This is GLM2FSA's parsing stage: each step sentence is broken into an
    (optional) condition and a consequent, phrases are aligned to the
    canonical vocabulary through the {!Lexicon}, and the result is a clause
    ready for controller construction.

    Parsing is deliberately permissive: an unalignable condition attached to
    an alignable action degrades to an unconditional action (the dangerous
    reading), and a fully unalignable step is dropped.  Both are reported in
    {!stats} — the paper's fine-tuning explicitly optimizes the language
    model to avoid producing such steps. *)

type outcome =
  | Parsed of Clause.t
  | Degraded of Clause.t * string  (** clause + reason for the degradation *)
  | Failed of string  (** reason *)

type stats = {
  total : int;
  exact : int;  (** steps aligned without fuzziness *)
  fuzzy : int;  (** steps that needed fuzzy alignment *)
  degraded : int;
  failed : int;
}

val parse_step : Lexicon.t -> string -> outcome

val parse_steps : Lexicon.t -> string list -> Clause.t list * stats
(** Parse each step; failed steps contribute no clause. *)
