lib/lang/step_parser.ml: Clause Dpoaf_util Fun Lexicon List String
