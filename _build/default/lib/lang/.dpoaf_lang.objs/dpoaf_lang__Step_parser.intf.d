lib/lang/step_parser.mli: Clause Lexicon
