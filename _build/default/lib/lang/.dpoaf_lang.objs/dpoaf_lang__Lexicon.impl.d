lib/lang/lexicon.ml: Dpoaf_util Hashtbl List Printf
