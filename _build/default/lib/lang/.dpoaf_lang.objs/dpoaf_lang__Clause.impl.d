lib/lang/clause.ml: Dpoaf_automata Format
