lib/lang/clause.mli: Dpoaf_automata Dpoaf_logic Format
