lib/lang/repair.ml: Clause Dpoaf_logic Glm2fsa List
