lib/lang/repair.mli: Clause Dpoaf_logic
