lib/lang/lexicon.mli:
