lib/lang/glm2fsa.ml: Clause Dpoaf_automata Dpoaf_logic List Step_parser
