lib/lang/glm2fsa.mli: Clause Dpoaf_automata Lexicon Step_parser
