(** Alignment of surface phrases to the canonical proposition and action
    vocabulary (the paper's second prompt, "align the steps to the defined
    Boolean propositions and actions").

    Matching is exact first, then via registered synonyms, then by
    stopword-filtered word overlap.  Fuzzy matching can mis-align ambiguous
    phrasings (e.g. bare "pedestrian" against the three pedestrian
    propositions); reducing such mistakes is part of what DPO-AF trains the
    language model to do. *)

type kind = Proposition | Action

type quality = Exact | Synonym | Fuzzy of float

type t

val create : props:string list -> actions:string list -> t

val add_synonym : t -> kind -> canonical:string -> phrase:string -> unit
(** Register an alternative phrasing.  @raise Invalid_argument if
    [canonical] is not in the vocabulary. *)

val vocabulary : t -> kind -> string list

val align : t -> kind -> string -> (string * quality) option
(** Best canonical term for a surface phrase, or [None] when nothing
    clears the overlap threshold. *)

val align_condition_phrase : t -> string -> (string * bool * quality) option
(** Align a condition phrase, extracting negation markers ("no X",
    "X is not present", "X is off"): returns (canonical, negated, quality). *)
