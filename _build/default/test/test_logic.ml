open Dpoaf_logic

let sym atoms = Symbol.of_atoms atoms
let trace steps = Array.of_list (List.map sym steps)

(* ---------------- generators ---------------- *)

let atom_names = [ "p"; "q"; "r" ]

let gen_formula =
  let open QCheck.Gen in
  sized_size (int_bound 16) @@ fix (fun self n ->
      if n <= 0 then
        oneof
          [ return Ltl.True; return Ltl.False;
            map Ltl.atom (oneofl atom_names) ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map Ltl.atom (oneofl atom_names);
            map Ltl.neg sub;
            map2 (fun a b -> Ltl.And (a, b)) sub sub;
            map2 (fun a b -> Ltl.Or (a, b)) sub sub;
            map2 (fun a b -> Ltl.Implies (a, b)) sub sub;
            map Ltl.next sub;
            map Ltl.eventually sub;
            map Ltl.always sub;
            map2 Ltl.until sub sub;
            map2 Ltl.release sub sub;
          ])

let arb_formula = QCheck.make ~print:Ltl.to_string gen_formula

let gen_step =
  QCheck.Gen.(
    map
      (fun bools ->
        sym (List.filteri (fun i _ -> List.nth bools i) atom_names))
      (list_repeat (List.length atom_names) bool))

let gen_steps lo hi = QCheck.Gen.(map Array.of_list (list_size (lo -- hi) gen_step))

let print_steps steps =
  String.concat ";" (Array.to_list (Array.map Symbol.to_string steps))

let arb_formula_and_trace =
  QCheck.make
    ~print:(fun (f, t) -> Ltl.to_string f ^ " on " ^ print_steps t)
    QCheck.Gen.(pair gen_formula (gen_steps 1 6))

let arb_formula_and_lasso =
  QCheck.make
    ~print:(fun (f, (p, c)) ->
      Ltl.to_string f ^ " on " ^ print_steps p ^ " (" ^ print_steps c ^ ")^w")
    QCheck.Gen.(pair gen_formula (pair (gen_steps 0 4) (gen_steps 1 4)))

(* ---------------- unit tests ---------------- *)

let check_parse input expected =
  match Ltl.parse input with
  | Ok f -> Alcotest.(check string) input (Ltl.to_string expected) (Ltl.to_string f)
  | Error e -> Alcotest.failf "parse %S failed: %s" input e

let test_parse_basic () =
  check_parse "p" (Ltl.atom "p");
  check_parse "true" Ltl.True;
  check_parse "false" Ltl.False;
  check_parse "!p" Ltl.(neg (atom "p"));
  check_parse "p & q" Ltl.(And (Atom "p", Atom "q"));
  check_parse "p | q" Ltl.(Or (Atom "p", Atom "q"));
  check_parse "p -> q" Ltl.(implies (atom "p") (atom "q"))

let test_parse_temporal () =
  check_parse "G p" Ltl.(always (atom "p"));
  check_parse "F p" Ltl.(eventually (atom "p"));
  check_parse "X p" Ltl.(next (atom "p"));
  check_parse "p U q" Ltl.(until (atom "p") (atom "q"));
  check_parse "p R q" Ltl.(release (atom "p") (atom "q"))

let test_parse_precedence () =
  check_parse "p -> q | r" Ltl.(implies (atom "p") (Or (Atom "q", Atom "r")));
  check_parse "p | q & r" Ltl.(Or (Atom "p", And (Atom "q", Atom "r")));
  check_parse "p & q U r" Ltl.(And (Atom "p", until (atom "q") (atom "r")));
  check_parse "!p U q" Ltl.(until (neg (atom "p")) (atom "q"));
  check_parse "G (p -> F q)"
    Ltl.(always (implies (atom "p") (eventually (atom "q"))))

let test_parse_quoted () =
  check_parse "\"car from left\" -> !\"turn right\""
    Ltl.(implies (atom "car from left") (neg (atom "turn right")))

let test_parse_spec_phi1 () =
  check_parse "G (pedestrian -> F stop)"
    Ltl.(always (implies (atom "pedestrian") (eventually (atom "stop"))))

let test_parse_errors () =
  let bad = [ "("; "p &"; "p q"; "\"unterminated"; "->"; "" ] in
  List.iter
    (fun s ->
      match Ltl.parse s with
      | Ok f -> Alcotest.failf "parse %S unexpectedly succeeded: %s" s (Ltl.to_string f)
      | Error _ -> ())
    bad

let test_atoms () =
  let f = Ltl.parse_exn "G (p -> F q) & (r U p)" in
  Alcotest.(check (list string)) "atoms" [ "p"; "q"; "r" ]
    (Symbol.elements (Ltl.atoms f))

let test_nnf_shape () =
  let f = Ltl.parse_exn "!(p U (q & !r))" in
  let g = Ltl.nnf f in
  Alcotest.(check bool) "is_nnf" true (Ltl.is_nnf g);
  Alcotest.(check bool) "original not nnf" false (Ltl.is_nnf f)

let test_finite_eval_atoms () =
  let t = trace [ [ "p" ]; [ "q" ] ] in
  Alcotest.(check bool) "p at 0" true (Trace.eval_finite (Ltl.atom "p") t);
  Alcotest.(check bool) "q at 0" false (Trace.eval_finite (Ltl.atom "q") t);
  Alcotest.(check bool) "X q" true (Trace.eval_finite Ltl.(next (atom "q")) t);
  Alcotest.(check bool) "X X q strong" false
    (Trace.eval_finite Ltl.(next (next (atom "q"))) t)

let test_finite_eval_until () =
  let t = trace [ [ "p" ]; [ "p" ]; [ "q" ] ] in
  Alcotest.(check bool) "p U q" true
    (Trace.eval_finite Ltl.(until (atom "p") (atom "q")) t);
  let t2 = trace [ [ "p" ]; [ "p" ]; [ "p" ] ] in
  Alcotest.(check bool) "p U q fails without q" false
    (Trace.eval_finite Ltl.(until (atom "p") (atom "q")) t2)

let test_finite_eval_always () =
  let t = trace [ [ "p" ]; [ "p" ] ] in
  Alcotest.(check bool) "G p" true (Trace.eval_finite Ltl.(always (atom "p")) t);
  let t2 = trace [ [ "p" ]; [] ] in
  Alcotest.(check bool) "G p fails" false
    (Trace.eval_finite Ltl.(always (atom "p")) t2)

let test_finite_eval_spec () =
  let phi = Ltl.parse_exn "G (ped -> F stop)" in
  let good = trace [ [ "ped" ]; []; [ "stop" ] ] in
  let bad = trace [ [ "ped" ]; []; [] ] in
  Alcotest.(check bool) "good" true (Trace.eval_finite phi good);
  Alcotest.(check bool) "bad" false (Trace.eval_finite phi bad)

let test_empty_trace () =
  Alcotest.(check bool) "G p vacuous" true
    (Trace.eval_finite (Ltl.parse_exn "G p") [||]);
  Alcotest.(check bool) "F p false" false
    (Trace.eval_finite (Ltl.parse_exn "F p") [||]);
  Alcotest.(check bool) "true" true (Trace.eval_finite Ltl.True [||])

let test_lasso_eval_gf () =
  let cycle = trace [ [ "p" ]; [ "q" ] ] in
  let holds f = Trace.eval_lasso (Ltl.parse_exn f) ~prefix:[||] ~cycle in
  Alcotest.(check bool) "GF p" true (holds "G F p");
  Alcotest.(check bool) "GF q" true (holds "G F q");
  Alcotest.(check bool) "G p" false (holds "G p");
  Alcotest.(check bool) "F G p" false (holds "F G p")

let test_lasso_eval_prefix () =
  let prefix = trace [ [ "p" ] ] and cycle = trace [ [ "q" ] ] in
  let holds f = Trace.eval_lasso (Ltl.parse_exn f) ~prefix ~cycle in
  Alcotest.(check bool) "FG q" true (holds "F G q");
  Alcotest.(check bool) "G q" false (holds "G q");
  Alcotest.(check bool) "p" true (holds "p");
  Alcotest.(check bool) "X q" true (holds "X q")

let test_lasso_empty_cycle () =
  Alcotest.check_raises "empty cycle"
    (Invalid_argument "Trace.eval_lasso: empty cycle") (fun () ->
      ignore (Trace.eval_lasso Ltl.True ~prefix:[||] ~cycle:[||]))

(* ---------------- properties ---------------- *)

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"parse (pp f) = f" arb_formula (fun f ->
      match Ltl.parse (Ltl.to_string f) with
      | Ok g -> Ltl.equal f g
      | Error _ -> false)

(* On finite traces with strong Next, !X f and X !f differ at the last
   position, so NNF preserves LTLf semantics only for X-free formulas. *)
let rec has_next = function
  | Ltl.Next _ -> true
  | Ltl.True | Ltl.False | Ltl.Atom _ -> false
  | Ltl.Not f | Ltl.Eventually f | Ltl.Always f -> has_next f
  | Ltl.And (a, b) | Ltl.Or (a, b) | Ltl.Implies (a, b)
  | Ltl.Until (a, b) | Ltl.Release (a, b) ->
      has_next a || has_next b

let prop_nnf_finite =
  QCheck.Test.make ~count:1000 ~name:"nnf preserves finite semantics (X-free)"
    arb_formula_and_trace (fun (f, t) ->
      has_next f || Trace.eval_finite f t = Trace.eval_finite (Ltl.nnf f) t)

let prop_nnf_lasso =
  QCheck.Test.make ~count:1000 ~name:"nnf preserves lasso semantics"
    arb_formula_and_lasso (fun (f, (p, c)) ->
      Trace.eval_lasso f ~prefix:p ~cycle:c
      = Trace.eval_lasso (Ltl.nnf f) ~prefix:p ~cycle:c)

let prop_nnf_is_nnf =
  QCheck.Test.make ~count:500 ~name:"nnf produces nnf" arb_formula (fun f ->
      Ltl.is_nnf (Ltl.nnf f))

let prop_negation_lasso =
  QCheck.Test.make ~count:1000 ~name:"lasso: f xor !f" arb_formula_and_lasso
    (fun (f, (p, c)) ->
      Trace.eval_lasso f ~prefix:p ~cycle:c
      <> Trace.eval_lasso (Ltl.neg f) ~prefix:p ~cycle:c)

let prop_until_release_duality =
  QCheck.Test.make ~count:500 ~name:"lasso: !(a U b) = !a R !b"
    arb_formula_and_lasso (fun (f, (p, c)) ->
      let a = f and b = Ltl.next f in
      Trace.eval_lasso (Ltl.neg (Ltl.until a b)) ~prefix:p ~cycle:c
      = Trace.eval_lasso (Ltl.release (Ltl.neg a) (Ltl.neg b)) ~prefix:p ~cycle:c)

let prop_until_idempotent =
  QCheck.Test.make ~count:400 ~name:"lasso: f U (f U g) = f U g"
    arb_formula_and_lasso (fun (f, (p, c)) ->
      let g = Ltl.neg f in
      Trace.eval_lasso (Ltl.until f (Ltl.until f g)) ~prefix:p ~cycle:c
      = Trace.eval_lasso (Ltl.until f g) ~prefix:p ~cycle:c)

let prop_always_expansion =
  QCheck.Test.make ~count:400 ~name:"lasso: G f = f & X G f"
    arb_formula_and_lasso (fun (f, (p, c)) ->
      Trace.eval_lasso (Ltl.always f) ~prefix:p ~cycle:c
      = Trace.eval_lasso (Ltl.And (f, Ltl.next (Ltl.always f))) ~prefix:p ~cycle:c)

let prop_until_expansion =
  QCheck.Test.make ~count:400 ~name:"lasso: f U g = g | (f & X (f U g))"
    arb_formula_and_lasso (fun (f, (p, c)) ->
      let g = Ltl.next f in
      Trace.eval_lasso (Ltl.until f g) ~prefix:p ~cycle:c
      = Trace.eval_lasso
          (Ltl.Or (g, Ltl.And (f, Ltl.next (Ltl.until f g))))
          ~prefix:p ~cycle:c)

let prop_lasso_unroll =
  QCheck.Test.make ~count:500 ~name:"lasso: unroll invariant"
    arb_formula_and_lasso (fun (f, (p, c)) ->
      Trace.eval_lasso f ~prefix:p ~cycle:c
      = Trace.eval_lasso f ~prefix:(Array.append p c) ~cycle:c)

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "logic"
    [
      ( "parse",
        [
          Alcotest.test_case "basic" `Quick test_parse_basic;
          Alcotest.test_case "temporal" `Quick test_parse_temporal;
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "quoted atoms" `Quick test_parse_quoted;
          Alcotest.test_case "phi1" `Quick test_parse_spec_phi1;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
      ( "ast",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "nnf shape" `Quick test_nnf_shape;
        ] );
      ( "finite",
        [
          Alcotest.test_case "atoms/next" `Quick test_finite_eval_atoms;
          Alcotest.test_case "until" `Quick test_finite_eval_until;
          Alcotest.test_case "always" `Quick test_finite_eval_always;
          Alcotest.test_case "spec phi1" `Quick test_finite_eval_spec;
          Alcotest.test_case "empty trace" `Quick test_empty_trace;
        ] );
      ( "lasso",
        [
          Alcotest.test_case "GF on cycle" `Quick test_lasso_eval_gf;
          Alcotest.test_case "prefix" `Quick test_lasso_eval_prefix;
          Alcotest.test_case "empty cycle" `Quick test_lasso_empty_cycle;
        ] );
      qsuite "properties"
        [
          prop_roundtrip;
          prop_nnf_finite;
          prop_nnf_lasso;
          prop_nnf_is_nnf;
          prop_negation_lasso;
          prop_until_release_duality;
          prop_until_idempotent;
          prop_always_expansion;
          prop_until_expansion;
          prop_lasso_unroll;
        ];
    ]
