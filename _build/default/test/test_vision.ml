open Dpoaf_vision
module Rng = Dpoaf_util.Rng

let dataset ?(n = 8000) seed domain condition =
  Detector.detect_dataset (Rng.create seed) domain condition ~n

(* ---------------- detector ---------------- *)

let test_confidence_in_range () =
  List.iter
    (fun d ->
      Alcotest.(check bool) "confidence in (0,1)" true
        (d.Detector.confidence > 0.0 && d.Detector.confidence < 1.0))
    (dataset ~n:500 1 Detector.Sim Detector.Clear)

let test_class_mix_uniform () =
  let ds = dataset ~n:400 2 Detector.Real Detector.Clear in
  List.iter
    (fun cls ->
      let k = List.length (List.filter (fun d -> d.Detector.cls = cls) ds) in
      Alcotest.(check int) (Detector.class_name cls) 100 k)
    Detector.all_classes

let test_conditions_degrade_confidence () =
  (* Fig 13's qualitative content: rain and night reduce confidence. *)
  let mean_conf ds =
    Dpoaf_util.Stats.mean (List.map (fun d -> d.Detector.confidence) ds)
  in
  let clear = mean_conf (dataset 3 Detector.Real Detector.Clear) in
  let rain = mean_conf (dataset 4 Detector.Real Detector.Rain) in
  let night = mean_conf (dataset 5 Detector.Real Detector.Night) in
  Alcotest.(check bool)
    (Printf.sprintf "clear %.3f > rain %.3f > night %.3f" clear rain night)
    true
    (clear > rain && rain > night)

let test_conditions_degrade_accuracy () =
  let acc seed c = Detector.accuracy (dataset seed Detector.Sim c) in
  Alcotest.(check bool) "clear beats night" true
    (acc 6 Detector.Clear > acc 7 Detector.Night)

let test_higher_confidence_more_accurate () =
  let ds = dataset 8 Detector.Real Detector.Clear in
  let hi = List.filter (fun d -> d.Detector.confidence > 0.8) ds in
  let lo = List.filter (fun d -> d.Detector.confidence < 0.4) ds in
  Alcotest.(check bool) "both populated" true (List.length hi > 50 && List.length lo > 50);
  Alcotest.(check bool) "monotone" true (Detector.accuracy hi > Detector.accuracy lo)

let test_accuracy_empty () =
  Alcotest.(check (float 0.0)) "empty" 0.0 (Detector.accuracy [])

(* ---------------- calibration ---------------- *)

let test_curve_bin_structure () =
  let bins = Calibration.curve ~bins:10 (dataset 9 Detector.Sim Detector.Clear) in
  Alcotest.(check int) "10 bins" 10 (List.length bins);
  List.iteri
    (fun i b ->
      Alcotest.(check (float 1e-9)) "lo" (float_of_int i /. 10.0) b.Calibration.lo;
      Alcotest.(check bool) "accuracy in range" true
        (b.Calibration.accuracy >= 0.0 && b.Calibration.accuracy <= 1.0))
    bins;
  let total = List.fold_left (fun acc b -> acc + b.Calibration.count) 0 bins in
  Alcotest.(check int) "counts add up" 8000 total

let test_curve_roughly_monotone () =
  let bins = Calibration.curve ~bins:5 (dataset 10 Detector.Real Detector.Clear) in
  let populated = List.filter (fun b -> b.Calibration.count > 100) bins in
  let accs = List.map (fun b -> b.Calibration.accuracy) populated in
  let rec weakly_increasing = function
    | a :: b :: rest -> a <= b +. 0.08 && weakly_increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "roughly monotone" true (weakly_increasing accs)

let test_sim_real_consistent () =
  (* Figure 12's claim: sim and real confidence→accuracy curves agree. *)
  let sim = Calibration.curve (dataset ~n:20000 11 Detector.Sim Detector.Clear) in
  let real = Calibration.curve (dataset ~n:20000 12 Detector.Real Detector.Clear) in
  let gap = Calibration.max_gap sim real in
  Alcotest.(check bool)
    (Printf.sprintf "max gap %.3f <= 0.1" gap)
    true
    (Calibration.consistent ~tolerance:0.1 sim real)

let test_consistency_detects_divergence () =
  (* A deliberately mis-calibrated curve is flagged. *)
  let sim = Calibration.curve (dataset ~n:20000 13 Detector.Sim Detector.Clear) in
  let broken =
    List.map
      (fun b -> { b with Calibration.accuracy = 1.0 -. b.Calibration.accuracy })
      sim
  in
  Alcotest.(check bool) "divergence detected" false
    (Calibration.consistent ~tolerance:0.1 sim broken)

let test_max_gap_mismatched_bins () =
  let a = Calibration.curve ~bins:5 (dataset ~n:100 14 Detector.Sim Detector.Clear) in
  let b = Calibration.curve ~bins:10 (dataset ~n:100 15 Detector.Sim Detector.Clear) in
  Alcotest.(check bool) "rejected" true
    (try ignore (Calibration.max_gap a b); false with Invalid_argument _ -> true)

let test_ece_reasonable () =
  let bins = Calibration.curve (dataset ~n:20000 16 Detector.Real Detector.Clear) in
  let ece = Calibration.expected_calibration_error bins in
  Alcotest.(check bool) (Printf.sprintf "ece %.3f < 0.2" ece) true (ece < 0.2)

let () =
  Alcotest.run "vision"
    [
      ( "detector",
        [
          Alcotest.test_case "confidence range" `Quick test_confidence_in_range;
          Alcotest.test_case "class mix" `Quick test_class_mix_uniform;
          Alcotest.test_case "conditions degrade confidence" `Quick
            test_conditions_degrade_confidence;
          Alcotest.test_case "conditions degrade accuracy" `Quick
            test_conditions_degrade_accuracy;
          Alcotest.test_case "confidence-accuracy monotone" `Quick
            test_higher_confidence_more_accurate;
          Alcotest.test_case "empty accuracy" `Quick test_accuracy_empty;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "bin structure" `Quick test_curve_bin_structure;
          Alcotest.test_case "roughly monotone" `Quick test_curve_roughly_monotone;
          Alcotest.test_case "sim-real consistent (fig 12)" `Quick test_sim_real_consistent;
          Alcotest.test_case "divergence detected" `Quick test_consistency_detects_divergence;
          Alcotest.test_case "mismatched bins" `Quick test_max_gap_mismatched_bins;
          Alcotest.test_case "ece" `Quick test_ece_reasonable;
        ] );
    ]
