open Dpoaf_logic
open Dpoaf_automata

let sym atoms = Symbol.of_atoms atoms

let kripke ?(descr = None) ~labels ~succs ~initial () =
  let labels = Array.of_list (List.map sym labels) in
  let succs = Array.of_list succs in
  ignore descr;
  Kripke.make ~labels ~succs ~initial ()

let check_holds name k phi_str expected =
  let phi = Ltl.parse_exn phi_str in
  let verdict = Model_checker.check_kripke k phi in
  Alcotest.(check bool) (name ^ ": " ^ phi_str) expected (Model_checker.is_holds verdict)

(* --- known-answer model checking --- *)

let k_single = kripke ~labels:[ [ "p" ] ] ~succs:[ [ 0 ] ] ~initial:[ 0 ] ()

let test_mc_single_state () =
  check_holds "single" k_single "G p" true;
  check_holds "single" k_single "F q" false;
  check_holds "single" k_single "G !p" false;
  check_holds "single" k_single "X p" true;
  check_holds "single" k_single "p U q" false;
  check_holds "single" k_single "G F p" true;
  check_holds "single" k_single "p" true;
  check_holds "single" k_single "!p" false

let k_cycle =
  kripke ~labels:[ [ "p" ]; [ "q" ] ] ~succs:[ [ 1 ]; [ 0 ] ] ~initial:[ 0 ] ()

let test_mc_two_cycle () =
  check_holds "cycle" k_cycle "G F q" true;
  check_holds "cycle" k_cycle "G F p" true;
  check_holds "cycle" k_cycle "G p" false;
  check_holds "cycle" k_cycle "X q" true;
  check_holds "cycle" k_cycle "X X p" true;
  check_holds "cycle" k_cycle "p U q" true;
  check_holds "cycle" k_cycle "F G p" false;
  check_holds "cycle" k_cycle "G (p -> X q)" true;
  check_holds "cycle" k_cycle "G (q -> X p)" true

let k_branch =
  kripke
    ~labels:[ [ "p" ]; [ "q" ]; [ "r" ] ]
    ~succs:[ [ 1; 2 ]; [ 1 ]; [ 2 ] ]
    ~initial:[ 0 ] ()

let test_mc_branching () =
  check_holds "branch" k_branch "F (q | r)" true;
  check_holds "branch" k_branch "F q" false;
  check_holds "branch" k_branch "F r" false;
  check_holds "branch" k_branch "G (p -> X (q | r))" true;
  check_holds "branch" k_branch "X q" false;
  (* every path eventually stabilizes in q or in r *)
  check_holds "branch" k_branch "F G q | F G r" true

let test_mc_multi_initial () =
  let k =
    kripke ~labels:[ [ "p" ]; [ "q" ] ] ~succs:[ [ 0 ]; [ 1 ] ] ~initial:[ 0; 1 ] ()
  in
  check_holds "multi" k "G p" false;
  check_holds "multi" k "G q" false;
  check_holds "multi" k "G p | G q" true

let test_mc_counterexample_violates () =
  let phi = Ltl.parse_exn "G (p -> X q)" in
  match Model_checker.check_kripke k_branch phi with
  | Model_checker.Holds -> Alcotest.fail "expected failure"
  | Model_checker.Fails cex ->
      let prefix = Array.of_list cex.Model_checker.prefix in
      let cycle = Array.of_list cex.Model_checker.cycle in
      Alcotest.(check bool) "cex violates" false
        (Trace.eval_lasso phi ~prefix ~cycle)

let test_mc_stutter_deadlock () =
  (* Deadlocked state gets a self-loop: labels repeat forever. *)
  let k = kripke ~labels:[ [ "p" ]; [ "q" ] ] ~succs:[ [ 1 ]; [] ] ~initial:[ 0 ] () in
  check_holds "deadlock" k "F G q" true;
  check_holds "deadlock" k "G F p" false

(* --- tableau spot checks --- *)

let test_tableau_sizes () =
  let gnba = Tableau.gnba_of_ltl (Ltl.parse_exn "p U q") in
  Alcotest.(check bool) "nonempty" true (gnba.Buchi.n > 0);
  Alcotest.(check int) "one acceptance set" 1 (Array.length gnba.Buchi.accept)

let test_tableau_false () =
  let gnba = Tableau.gnba_of_ltl Ltl.False in
  Alcotest.(check (list int)) "no initial" [] gnba.Buchi.initial

let test_degeneralize_no_sets () =
  let gnba =
    {
      Buchi.n = 1;
      initial = [ 0 ];
      pos = [| Symbol.empty |];
      neg = [| Symbol.empty |];
      succs = [| [ 0 ] |];
      accept = [||];
    }
  in
  let nba = Buchi.degeneralize gnba in
  Alcotest.(check bool) "all accepting" true (Array.for_all Fun.id nba.Buchi.accepting)

(* --- transition systems --- *)

let traffic_light_ts () =
  Ts.make ~name:"tl"
    ~states:[ ("green", sym [ "green" ]); ("yellow", sym [ "yellow" ]); ("red", sym [ "red" ]) ]
    ~transitions:[ ("green", "yellow"); ("yellow", "red"); ("red", "green") ]
    ()

let test_ts_make () =
  let ts = traffic_light_ts () in
  Alcotest.(check int) "3 states" 3 (Ts.n_states ts);
  Alcotest.(check bool) "total" true (Ts.is_total ts);
  Alcotest.(check (list int)) "green -> yellow" [ 1 ]
    (Ts.successors ts (Ts.state_of_name ts "green"))

let test_ts_make_errors () =
  let mk () =
    Ts.make ~name:"bad"
      ~states:[ ("a", Symbol.empty); ("a", Symbol.empty) ]
      ~transitions:[] ()
  in
  Alcotest.(check bool) "duplicate rejected" true
    (try ignore (mk ()); false with Invalid_argument _ -> true);
  let mk2 () =
    Ts.make ~name:"bad" ~states:[ ("a", Symbol.empty) ]
      ~transitions:[ ("a", "zz") ] ()
  in
  Alcotest.(check bool) "unknown state rejected" true
    (try ignore (mk2 ()); false with Invalid_argument _ -> true)

let test_ts_of_propositions () =
  (* The paper's Algorithm 1 example: red-green-yellow cycle keeps only the
     three singleton states. *)
  let single a l = Symbol.equal l (sym [ a ]) in
  let allowed a b =
    (single "green" a && single "red" b)
    || (single "red" a && single "yellow" b)
    || (single "yellow" a && single "green" b)
  in
  let ts =
    Ts.of_propositions ~name:"tl" ~props:[ "green"; "yellow"; "red" ] ~allowed ()
  in
  Alcotest.(check int) "three states remain" 3 (Ts.n_states ts);
  Alcotest.(check bool) "total" true (Ts.is_total ts)

let test_ts_of_propositions_keep () =
  let ts =
    Ts.of_propositions ~name:"all" ~props:[ "a" ] ~allowed:(fun _ _ -> false)
      ~keep_isolated:true ()
  in
  Alcotest.(check int) "2^1 states kept" 2 (Ts.n_states ts)

let test_ts_union () =
  let a = traffic_light_ts () in
  let b =
    Ts.make ~name:"b" ~states:[ ("x", sym [ "x" ]) ] ~transitions:[ ("x", "x") ] ()
  in
  let u = Ts.union ~name:"u" [ a; b ] in
  Alcotest.(check int) "4 states" 4 (Ts.n_states u);
  Alcotest.(check int) "4 initial" 4 (List.length u.Ts.initial);
  Alcotest.(check bool) "props merged" true
    (Symbol.mem "x" (Ts.propositions u) && Symbol.mem "green" (Ts.propositions u))

(* --- controllers and products --- *)

let wait_go_controller () =
  (* q0: wait (emit stop) until green; then go straight forever. *)
  Fsa.make ~name:"wait-go" ~n_states:2 ~init:0
    ~transitions:
      [
        { Fsa.src = 0; guard = Fsa.Gnot (Fsa.Gatom "green"); action = sym [ "stop" ]; dst = 0 };
        { Fsa.src = 0; guard = Fsa.Gatom "green"; action = sym [ "go" ]; dst = 1 };
        { Fsa.src = 1; guard = Fsa.Gtrue; action = sym [ "go" ]; dst = 1 };
      ]
    ()

let test_fsa_enabled () =
  let c = wait_go_controller () in
  Alcotest.(check int) "one enabled on red" 1 (List.length (Fsa.enabled c 0 (sym [ "red" ])));
  let acts = Fsa.enabled c 0 (sym [ "green" ]) in
  Alcotest.(check int) "one enabled on green" 1 (List.length acts);
  let action, dst = List.hd acts in
  Alcotest.(check bool) "go action" true (Symbol.mem "go" action);
  Alcotest.(check int) "advances" 1 dst

let test_fsa_input_enabled () =
  let c = wait_go_controller () in
  Alcotest.(check bool) "input enabled" true
    (Fsa.is_input_enabled c ~over:[ sym [ "green" ]; sym [ "red" ]; Symbol.empty ])

let test_fsa_make_errors () =
  Alcotest.(check bool) "bad init" true
    (try
       ignore (Fsa.make ~name:"x" ~n_states:1 ~init:3 ~transitions:[] ());
       false
     with Invalid_argument _ -> true)

let test_product_build () =
  let model = traffic_light_ts () in
  let c = wait_go_controller () in
  let p = Product.build ~model ~controller:c in
  Alcotest.(check int) "3 initial product states" 3 (List.length p.Product.initial);
  Alcotest.(check bool) "no deadlocks" true (p.Product.deadlocks = []);
  Alcotest.(check bool) "has edges" true (List.length p.Product.edges > 0)

let careful_controller () =
  (* Re-checks the light at every instant: goes only while green. *)
  Fsa.make ~name:"careful" ~n_states:1 ~init:0
    ~transitions:
      [
        { Fsa.src = 0; guard = Fsa.Gnot (Fsa.Gatom "green"); action = sym [ "stop" ]; dst = 0 };
        { Fsa.src = 0; guard = Fsa.Gatom "green"; action = sym [ "go" ]; dst = 0 };
      ]
    ()

let test_product_verification () =
  let model = traffic_light_ts () in
  let flawed = wait_go_controller () in
  (* The wait-go controller goes forever after the first green — the
     paper's "checked once, never re-checked" flaw (cf. the Φ5
     counterexample in §5.1).  The model checker must catch it. *)
  let phi = Ltl.parse_exn "G (go -> green)" in
  Alcotest.(check bool) "flawed controller caught" false
    (Model_checker.is_holds (Model_checker.check ~model ~controller:flawed phi));
  Alcotest.(check bool) "flawed red-go caught" false
    (Model_checker.is_holds
       (Model_checker.check ~model ~controller:flawed (Ltl.parse_exn "G (red -> !go)")));
  (* At the very first instant the flaw has not yet manifested. *)
  Alcotest.(check bool) "initial instant safe" true
    (Model_checker.is_holds
       (Model_checker.check ~model ~controller:flawed (Ltl.parse_exn "go -> green")));
  Alcotest.(check bool) "always acts" true
    (Model_checker.is_holds
       (Model_checker.check ~model ~controller:flawed (Ltl.parse_exn "G (stop | go)")));
  (* The careful controller satisfies the safety specs the flawed one fails. *)
  let careful = careful_controller () in
  Alcotest.(check bool) "careful go only on green" true
    (Model_checker.is_holds (Model_checker.check ~model ~controller:careful phi));
  Alcotest.(check bool) "careful red implies stop" true
    (Model_checker.is_holds
       (Model_checker.check ~model ~controller:careful (Ltl.parse_exn "G (red -> !go)")));
  (* Liveness: the light cycles, so the careful controller goes infinitely
     often. *)
  Alcotest.(check bool) "careful eventually goes" true
    (Model_checker.is_holds
       (Model_checker.check ~model ~controller:careful (Ltl.parse_exn "G F go")))

let test_product_counterexample_trace () =
  let model = traffic_light_ts () in
  let c = wait_go_controller () in
  let phi = Ltl.parse_exn "G (red -> !go)" in
  match Model_checker.check ~model ~controller:c phi with
  | Model_checker.Holds -> Alcotest.fail "expected failure"
  | Model_checker.Fails cex ->
      Alcotest.(check bool) "cex violates spec" false
        (Trace.eval_lasso phi
           ~prefix:(Array.of_list cex.Model_checker.prefix)
           ~cycle:(Array.of_list cex.Model_checker.cycle))

let test_count_satisfied () =
  let model = traffic_light_ts () in
  let specs =
    [
      ("s1", Ltl.parse_exn "G (go -> green)");
      ("s2", Ltl.parse_exn "G (red -> !go)");
      ("s3", Ltl.parse_exn "G (stop | go)");
    ]
  in
  Alcotest.(check int) "flawed: 1 of 3" 1
    (Model_checker.count_satisfied ~model ~controller:(wait_go_controller ()) ~specs);
  Alcotest.(check int) "careful: 3 of 3" 3
    (Model_checker.count_satisfied ~model ~controller:(careful_controller ()) ~specs)

let test_deadlock_product () =
  (* Controller with no enabled transition on yellow: deadlock is stuttered. *)
  let model = traffic_light_ts () in
  let c =
    Fsa.make ~name:"partial" ~n_states:1 ~init:0
      ~transitions:
        [ { Fsa.src = 0; guard = Fsa.Gatom "green"; action = sym [ "go" ]; dst = 0 } ]
      ()
  in
  let p = Product.build ~model ~controller:c in
  Alcotest.(check bool) "deadlocks exist" true (p.Product.deadlocks <> []);
  let k = Product.to_kripke p in
  Alcotest.(check bool) "kripke total" true (Kripke.is_total k)

(* --- SMV export --- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_smv_ident () =
  Alcotest.(check string) "spaces" "car_from_left" (Smv.ident "car from left");
  Alcotest.(check string) "dash" "left_turn" (Smv.ident "left-turn")

let test_smv_of_ltl () =
  Alcotest.(check string) "G/F" "G (ped -> F stop)"
    (Smv.of_ltl (Ltl.parse_exn "G (ped -> F stop)"));
  Alcotest.(check string) "release" "p V q" (Smv.of_ltl (Ltl.parse_exn "p R q"))

let test_smv_of_kripke () =
  let s =
    Smv.of_kripke ~name:"m" k_cycle ~specs:[ ("phi_1", Ltl.parse_exn "G F q") ]
  in
  Alcotest.(check bool) "module" true (contains ~sub:"MODULE m" s);
  Alcotest.(check bool) "ltlspec" true (contains ~sub:"LTLSPEC NAME phi_1" s);
  Alcotest.(check bool) "trans" true (contains ~sub:"TRANS" s)

let test_smv_of_controller () =
  let s = Smv.of_controller ~name:"c" (wait_go_controller ()) ~props:[ "green" ] in
  Alcotest.(check bool) "var green" true (contains ~sub:"green : boolean" s);
  Alcotest.(check bool) "action enum" true (contains ~sub:"action : {" s)

(* --- satisfiability --- *)

let test_sat_basic () =
  let sat s = Satisfiability.is_satisfiable (Ltl.parse_exn s) in
  Alcotest.(check bool) "p" true (sat "p");
  Alcotest.(check bool) "p & !p" false (sat "p & !p");
  Alcotest.(check bool) "F p & G !p" false (sat "F p & G !p");
  Alcotest.(check bool) "G F p & G F !p" true (sat "G F p & G F !p");
  Alcotest.(check bool) "false" false (sat "false");
  Alcotest.(check bool) "X p & !p" true (sat "X p & !p");
  Alcotest.(check bool) "G (p -> X !p) & G F p" true (sat "G (p -> X !p) & G F p")

let test_sat_witness_satisfies () =
  let phis = [ "G F p"; "p U q"; "G (p -> X q)"; "F G p" ] in
  List.iter
    (fun s ->
      let phi = Ltl.parse_exn s in
      match Satisfiability.witness phi with
      | None -> Alcotest.failf "%s should be satisfiable" s
      | Some (prefix, cycle) ->
          Alcotest.(check bool) (s ^ " witness checks") true
            (Trace.eval_lasso phi ~prefix ~cycle))
    phis

(* --- SMV reader (round-trip with the exporter) --- *)

let test_smv_reader_roundtrip_cycle () =
  let specs = [ ("phi_1", Ltl.parse_exn "G F q"); ("phi_2", Ltl.parse_exn "G p") ] in
  let text = Smv.of_kripke ~name:"m" k_cycle ~specs in
  let parsed = Smv_reader.parse_exn text in
  Alcotest.(check string) "name" "m" parsed.Smv_reader.name;
  Alcotest.(check int) "states" (Kripke.n_states k_cycle)
    (Kripke.n_states parsed.Smv_reader.kripke);
  Alcotest.(check int) "specs" 2 (List.length parsed.Smv_reader.specs);
  (* verdicts agree between original and re-parsed structures *)
  List.iter
    (fun (_, phi) ->
      Alcotest.(check bool)
        (Ltl.to_string phi)
        (Model_checker.is_holds (Model_checker.check_kripke k_cycle phi))
        (Model_checker.is_holds
           (Model_checker.check_kripke parsed.Smv_reader.kripke phi)))
    parsed.Smv_reader.specs

let test_smv_reader_initial_states () =
  let k = kripke ~labels:[ [ "p" ]; [ "q" ] ] ~succs:[ [ 1 ]; [ 0 ] ] ~initial:[ 1 ] () in
  let parsed = Smv_reader.parse_exn (Smv.of_kripke ~name:"x" k ~specs:[]) in
  Alcotest.(check (list int)) "initial preserved" [ 1 ]
    parsed.Smv_reader.kripke.Kripke.initial

let test_smv_reader_errors () =
  List.iter
    (fun text ->
      match Smv_reader.parse text with
      | Ok _ -> Alcotest.failf "unexpectedly parsed %S" text
      | Error _ -> ())
    [
      "";
      "MODULE";
      "MODULE m\nVAR\n  flag : boolean;\n";
      "MODULE m\nVAR\n  state : 0..1;\nINIT state = 0\n";
    ]

let prop_smv_roundtrip =
  let gen =
    let open QCheck.Gen in
    let gen_label =
      map (fun l -> sym l) (oneofl [ []; [ "p" ]; [ "q" ]; [ "p"; "q" ] ])
    in
    int_range 2 4 >>= fun n ->
    list_repeat n gen_label >>= fun labels ->
    list_repeat n (list_size (1 -- 2) (int_range 0 (n - 1))) >>= fun succs ->
    int_range 0 (n - 1) >>= fun init ->
    return
      (Kripke.make ~labels:(Array.of_list labels) ~succs:(Array.of_list succs)
         ~initial:[ init ] ())
  in
  QCheck.Test.make ~count:200 ~name:"smv export/import round-trip"
    (QCheck.make ~print:(Format.asprintf "%a" Kripke.pp) gen)
    (fun k ->
      let parsed = Smv_reader.parse_exn (Smv.of_kripke ~name:"rt" k ~specs:[]) in
      let k' = parsed.Smv_reader.kripke in
      Kripke.n_states k' = Kripke.n_states k
      && k'.Kripke.initial = k.Kripke.initial
      && Array.for_all2 ( = ) k'.Kripke.succs k.Kripke.succs
      && Array.for_all2 Symbol.equal
           (Array.map
              (fun l -> Symbol.of_atoms (List.map Smv.ident (Symbol.elements l)))
              k.Kripke.labels)
           k'.Kripke.labels)

(* --- cross-check properties --- *)

let gen_kripke =
  let open QCheck.Gen in
  let gen_label = map sym (oneofl [ []; [ "p" ]; [ "q" ]; [ "p"; "q" ] ] |> fun g -> g) in
  int_range 2 4 >>= fun n ->
  list_repeat n gen_label >>= fun labels ->
  list_repeat n (list_size (1 -- 2) (int_range 0 (n - 1))) >>= fun succs ->
  int_range 0 (n - 1) >>= fun init ->
  return
    (Kripke.make
       ~labels:(Array.of_list labels)
       ~succs:(Array.of_list succs)
       ~initial:[ init ] ())

let gen_formula =
  let open QCheck.Gen in
  let atom_names = [ "p"; "q" ] in
  sized_size (int_bound 10) @@ QCheck.Gen.fix (fun self n ->
      if n <= 0 then oneof [ return Ltl.True; map Ltl.atom (oneofl atom_names) ]
      else
        let sub = self (n / 2) in
        oneof
          [
            map Ltl.atom (oneofl atom_names);
            map Ltl.neg sub;
            map2 (fun a b -> Ltl.And (a, b)) sub sub;
            map2 (fun a b -> Ltl.Or (a, b)) sub sub;
            map Ltl.next sub;
            map Ltl.eventually sub;
            map Ltl.always sub;
            map2 Ltl.until sub sub;
            map2 Ltl.release sub sub;
          ])

let arb_mc_case =
  QCheck.make
    ~print:(fun (phi, k) ->
      Ltl.to_string phi ^ " on " ^ Format.asprintf "%a" Kripke.pp k)
    QCheck.Gen.(pair gen_formula gen_kripke)

let prop_cex_violates =
  QCheck.Test.make ~count:300 ~name:"counterexamples violate the formula"
    arb_mc_case (fun (phi, k) ->
      match Model_checker.check_kripke k phi with
      | Model_checker.Holds -> true
      | Model_checker.Fails cex ->
          not
            (Trace.eval_lasso phi
               ~prefix:(Array.of_list cex.Model_checker.prefix)
               ~cycle:(Array.of_list cex.Model_checker.cycle)))

let prop_holds_on_random_lassos =
  QCheck.Test.make ~count:300 ~name:"Holds implies random lassos satisfy"
    arb_mc_case (fun (phi, k) ->
      match Model_checker.check_kripke k phi with
      | Model_checker.Fails _ -> true
      | Model_checker.Holds ->
          let k = if Kripke.is_total k then k else Kripke.stutter_extend k in
          let rng = Dpoaf_util.Rng.create 7 in
          List.for_all
            (fun _ ->
              match Kripke.random_lasso k rng with
              | None -> true
              | Some (prefix, cycle) -> Trace.eval_lasso phi ~prefix ~cycle)
            (List.init 20 Fun.id))

let prop_sat_excluded_middle =
  QCheck.Test.make ~count:200 ~name:"f | !f always satisfiable"
    (QCheck.make ~print:Ltl.to_string gen_formula)
    (fun f -> Satisfiability.is_satisfiable (Ltl.Or (f, Ltl.neg f)))

let prop_sat_witness_valid =
  QCheck.Test.make ~count:150 ~name:"witnesses satisfy their formula"
    (QCheck.make ~print:Ltl.to_string gen_formula)
    (fun f ->
      match Satisfiability.witness f with
      | None -> true
      | Some (prefix, cycle) -> Trace.eval_lasso f ~prefix ~cycle)

let prop_sat_agrees_with_mc =
  (* f unsatisfiable iff !f holds on the 2-atom universal structure *)
  QCheck.Test.make ~count:60 ~name:"sat agrees with universal model checking"
    (QCheck.make ~print:Ltl.to_string gen_formula)
    (fun f ->
      let universal =
        Kripke.make
          ~labels:(Array.of_list (List.map sym [ []; [ "p" ]; [ "q" ]; [ "p"; "q" ] ]))
          ~succs:(Array.make 4 [ 0; 1; 2; 3 ])
          ~initial:[ 0; 1; 2; 3 ] ()
      in
      let no_path_satisfies =
        Model_checker.is_holds (Model_checker.check_kripke universal (Ltl.neg f))
      in
      Satisfiability.is_satisfiable f = not no_path_satisfies)

let prop_negation_exclusive =
  (* On a deterministic single-path Kripke structure, exactly one of phi and
     !phi holds. *)
  let gen_det =
    let open QCheck.Gen in
    let gen_label = map sym (oneofl [ []; [ "p" ]; [ "q" ]; [ "p"; "q" ] ]) in
    int_range 2 4 >>= fun n ->
    list_repeat n gen_label >>= fun labels ->
    list_repeat n (int_range 0 (n - 1)) >>= fun nexts ->
    return
      (Kripke.make
         ~labels:(Array.of_list labels)
         ~succs:(Array.of_list (List.map (fun j -> [ j ]) nexts))
         ~initial:[ 0 ] ())
  in
  QCheck.Test.make ~count:300 ~name:"deterministic: phi xor !phi"
    (QCheck.make
       ~print:(fun (phi, _) -> Ltl.to_string phi)
       QCheck.Gen.(pair gen_formula gen_det))
    (fun (phi, k) ->
      let holds f = Model_checker.is_holds (Model_checker.check_kripke k f) in
      holds phi <> holds (Ltl.neg phi))

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "automata"
    [
      ( "model-checker",
        [
          Alcotest.test_case "single state" `Quick test_mc_single_state;
          Alcotest.test_case "two cycle" `Quick test_mc_two_cycle;
          Alcotest.test_case "branching" `Quick test_mc_branching;
          Alcotest.test_case "multiple initial" `Quick test_mc_multi_initial;
          Alcotest.test_case "cex violates" `Quick test_mc_counterexample_violates;
          Alcotest.test_case "stutter deadlock" `Quick test_mc_stutter_deadlock;
        ] );
      ( "tableau",
        [
          Alcotest.test_case "sizes" `Quick test_tableau_sizes;
          Alcotest.test_case "false" `Quick test_tableau_false;
          Alcotest.test_case "degeneralize no sets" `Quick test_degeneralize_no_sets;
        ] );
      ( "ts",
        [
          Alcotest.test_case "make" `Quick test_ts_make;
          Alcotest.test_case "make errors" `Quick test_ts_make_errors;
          Alcotest.test_case "algorithm 1" `Quick test_ts_of_propositions;
          Alcotest.test_case "keep isolated" `Quick test_ts_of_propositions_keep;
          Alcotest.test_case "union" `Quick test_ts_union;
        ] );
      ( "fsa-product",
        [
          Alcotest.test_case "enabled" `Quick test_fsa_enabled;
          Alcotest.test_case "input enabled" `Quick test_fsa_input_enabled;
          Alcotest.test_case "make errors" `Quick test_fsa_make_errors;
          Alcotest.test_case "product build" `Quick test_product_build;
          Alcotest.test_case "product verification" `Quick test_product_verification;
          Alcotest.test_case "product cex trace" `Quick test_product_counterexample_trace;
          Alcotest.test_case "count satisfied" `Quick test_count_satisfied;
          Alcotest.test_case "deadlock product" `Quick test_deadlock_product;
        ] );
      ( "smv",
        [
          Alcotest.test_case "ident" `Quick test_smv_ident;
          Alcotest.test_case "ltl" `Quick test_smv_of_ltl;
          Alcotest.test_case "kripke" `Quick test_smv_of_kripke;
          Alcotest.test_case "controller" `Quick test_smv_of_controller;
        ] );
      ( "smv-reader",
        [
          Alcotest.test_case "roundtrip cycle" `Quick test_smv_reader_roundtrip_cycle;
          Alcotest.test_case "initial states" `Quick test_smv_reader_initial_states;
          Alcotest.test_case "errors" `Quick test_smv_reader_errors;
        ] );
      ( "satisfiability",
        [
          Alcotest.test_case "basic" `Quick test_sat_basic;
          Alcotest.test_case "witness satisfies" `Quick test_sat_witness_satisfies;
        ] );
      qsuite "properties"
        [
          prop_cex_violates; prop_holds_on_random_lassos; prop_negation_exclusive;
          prop_smv_roundtrip; prop_sat_excluded_middle; prop_sat_witness_valid;
          prop_sat_agrees_with_mc;
        ];
    ]
