test/test_driving.ml: Alcotest Array Dpoaf_automata Dpoaf_driving Dpoaf_lang Dpoaf_logic Dpoaf_util Evaluate Fun List Models Printf Responses Specs String Tasks Vocab
