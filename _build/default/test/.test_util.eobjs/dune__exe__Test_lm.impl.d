test/test_lm.ml: Alcotest Array Checkpoint Dpoaf_lm Dpoaf_tensor Dpoaf_util Filename Grammar Hashtbl List Model Option Pretrain Printf Prompt_format Sampler String Sys Vocab
