test/test_tensor.ml: Alcotest Array Autodiff Dpoaf_tensor Dpoaf_util List Lora Optim Tensor
