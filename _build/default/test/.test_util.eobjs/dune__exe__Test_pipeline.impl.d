test/test_pipeline.ml: Alcotest Corpus Dpoaf Dpoaf_dpo Dpoaf_driving Dpoaf_lm Dpoaf_pipeline Dpoaf_tensor Dpoaf_util Feedback List Printf
