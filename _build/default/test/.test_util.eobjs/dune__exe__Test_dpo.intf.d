test/test_dpo.mli:
