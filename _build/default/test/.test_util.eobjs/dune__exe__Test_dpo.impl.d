test/test_dpo.ml: Alcotest Dpo Dpoaf_dpo Dpoaf_lm Dpoaf_tensor Dpoaf_util Grammar List Model Pref_data Printf Reinforce Trainer Vocab
