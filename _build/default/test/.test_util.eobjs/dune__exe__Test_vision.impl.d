test/test_vision.ml: Alcotest Calibration Detector Dpoaf_util Dpoaf_vision List Printf
