test/test_lang.ml: Alcotest Clause Dpoaf_automata Dpoaf_lang Dpoaf_logic Fun Glm2fsa Lexicon List QCheck QCheck_alcotest Repair Step_parser
