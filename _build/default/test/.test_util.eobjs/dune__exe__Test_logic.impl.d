test/test_logic.ml: Alcotest Array Dpoaf_logic List Ltl QCheck QCheck_alcotest String Symbol Trace
