test/test_util.ml: Alcotest Array Csv Dpoaf_util Filename Fun List Rng Stats Strext String Sys Table
