test/test_driving.mli:
