open Dpoaf_lang
module Fsa = Dpoaf_automata.Fsa
module Symbol = Dpoaf_logic.Symbol

let sym = Symbol.of_atoms

let small_lexicon () =
  let lex =
    Lexicon.create
      ~props:[ "green traffic light"; "car from left"; "pedestrian at right" ]
      ~actions:[ "stop"; "turn right"; "go straight" ]
  in
  Lexicon.add_synonym lex Lexicon.Proposition ~canonical:"green traffic light"
    ~phrase:"traffic light";
  Lexicon.add_synonym lex Lexicon.Action ~canonical:"go straight"
    ~phrase:"move forward";
  lex

(* ---------------- lexicon ---------------- *)

let test_lexicon_exact () =
  let lex = small_lexicon () in
  match Lexicon.align lex Lexicon.Proposition "green traffic light" with
  | Some (c, Lexicon.Exact) -> Alcotest.(check string) "exact" "green traffic light" c
  | _ -> Alcotest.fail "expected exact match"

let test_lexicon_exact_ignores_noise () =
  let lex = small_lexicon () in
  match Lexicon.align lex Lexicon.Proposition "the state of the green traffic light" with
  | Some ("green traffic light", _) -> ()
  | _ -> Alcotest.fail "expected match through stopwords"

let test_lexicon_synonym () =
  let lex = small_lexicon () in
  match Lexicon.align lex Lexicon.Proposition "traffic light" with
  | Some ("green traffic light", Lexicon.Synonym) -> ()
  | _ -> Alcotest.fail "expected synonym match"

let test_lexicon_fuzzy () =
  let lex = small_lexicon () in
  match Lexicon.align lex Lexicon.Proposition "car approaching left" with
  | Some ("car from left", Lexicon.Fuzzy _) -> ()
  | other ->
      Alcotest.failf "expected fuzzy car-from-left, got %s"
        (match other with None -> "none" | Some (c, _) -> c)

let test_lexicon_no_match () =
  let lex = small_lexicon () in
  Alcotest.(check bool) "nonsense" true
    (Lexicon.align lex Lexicon.Proposition "quantum flux capacitor" = None)

let test_lexicon_bad_synonym () =
  let lex = small_lexicon () in
  Alcotest.(check bool) "unknown canonical rejected" true
    (try
       Lexicon.add_synonym lex Lexicon.Action ~canonical:"fly" ~phrase:"take off";
       false
     with Invalid_argument _ -> true)

let test_lexicon_negation () =
  let lex = small_lexicon () in
  (match Lexicon.align_condition_phrase lex "no car from left" with
  | Some ("car from left", true, _) -> ()
  | _ -> Alcotest.fail "expected negated match");
  match Lexicon.align_condition_phrase lex "the car from left is not present" with
  | Some ("car from left", true, _) -> ()
  | _ -> Alcotest.fail "expected negated match via 'not'"

(* ---------------- step parser ---------------- *)

let parse lex s =
  match Step_parser.parse_step lex s with
  | Step_parser.Parsed c -> c
  | Step_parser.Degraded (c, _) -> c
  | Step_parser.Failed why -> Alcotest.failf "parse failed on %S: %s" s why

let test_parse_observe () =
  let lex = small_lexicon () in
  match parse lex "observe the state of the green traffic light" with
  | Clause.Observe "green traffic light" -> ()
  | c -> Alcotest.failf "unexpected clause %s" (Clause.to_string c)

let test_parse_if_act () =
  let lex = small_lexicon () in
  match parse lex "if the green traffic light is on, execute the action go straight" with
  | Clause.If_act (Clause.Cond_atom "green traffic light", "go straight") -> ()
  | c -> Alcotest.failf "unexpected clause %s" (Clause.to_string c)

let test_parse_if_negated () =
  let lex = small_lexicon () in
  match parse lex "if no car from left, execute the action turn right" with
  | Clause.If_act (Clause.Cond_not "car from left", "turn right") -> ()
  | c -> Alcotest.failf "unexpected clause %s" (Clause.to_string c)

let test_parse_conjunction () =
  let lex = small_lexicon () in
  match
    parse lex
      "if no car from left and no pedestrian at right, execute the action turn right"
  with
  | Clause.If_act
      ( Clause.Cond_and (Clause.Cond_not "car from left", Clause.Cond_not "pedestrian at right"),
        "turn right" ) ->
      ()
  | c -> Alcotest.failf "unexpected clause %s" (Clause.to_string c)

let test_parse_if_check () =
  let lex = small_lexicon () in
  match
    parse lex "if the car from left is not present, check the state of the pedestrian at right"
  with
  | Clause.If_advance (Clause.Cond_not "car from left") -> ()
  | c -> Alcotest.failf "unexpected clause %s" (Clause.to_string c)

let test_parse_wait () =
  let lex = small_lexicon () in
  match parse lex "wait for the green traffic light" with
  | Clause.If_advance (Clause.Cond_atom "green traffic light") -> ()
  | c -> Alcotest.failf "unexpected clause %s" (Clause.to_string c)

let test_parse_goto () =
  let lex = small_lexicon () in
  match parse lex "if no car from left, go to step 2" with
  | Clause.If_goto (Clause.Cond_not "car from left", 2) -> ()
  | c -> Alcotest.failf "unexpected clause %s" (Clause.to_string c)

let test_parse_unconditional_action () =
  let lex = small_lexicon () in
  match parse lex "execute the action turn right" with
  | Clause.Act "turn right" -> ()
  | c -> Alcotest.failf "unexpected clause %s" (Clause.to_string c)

let test_parse_step_number_stripped () =
  let lex = small_lexicon () in
  match parse lex "3. observe the state of the car from left" with
  | Clause.Observe "car from left" -> ()
  | c -> Alcotest.failf "unexpected clause %s" (Clause.to_string c)

let test_parse_degraded_condition () =
  let lex = small_lexicon () in
  (* "it is safe" cannot be aligned: the action survives unguarded. *)
  match Step_parser.parse_step lex "if it is safe, turn right" with
  | Step_parser.Degraded (Clause.Act "turn right", _) -> ()
  | Step_parser.Parsed c -> Alcotest.failf "unexpectedly parsed: %s" (Clause.to_string c)
  | Step_parser.Degraded (c, _) -> Alcotest.failf "unexpected clause %s" (Clause.to_string c)
  | Step_parser.Failed why -> Alcotest.failf "unexpected failure: %s" why

let test_parse_failed () =
  let lex = small_lexicon () in
  match Step_parser.parse_step lex "sing a cheerful song" with
  | Step_parser.Failed _ -> ()
  | _ -> Alcotest.fail "expected failure"

let test_parse_steps_stats () =
  let lex = small_lexicon () in
  let _, stats =
    Step_parser.parse_steps lex
      [
        "observe the state of the green traffic light";
        "if it is safe, turn right";
        "sing a cheerful song";
      ]
  in
  Alcotest.(check int) "total" 3 stats.Step_parser.total;
  Alcotest.(check int) "degraded" 1 stats.Step_parser.degraded;
  Alcotest.(check int) "failed" 1 stats.Step_parser.failed

(* ---------------- clause / guard ---------------- *)

let test_clause_guard_eval () =
  let c =
    Clause.Cond_and (Clause.Cond_atom "green", Clause.Cond_not "car from left")
  in
  Alcotest.(check bool) "green clear" true (Clause.eval_condition c (sym [ "green" ]));
  Alcotest.(check bool) "green car" false
    (Clause.eval_condition c (sym [ "green"; "car from left" ]));
  Alcotest.(check bool) "red clear" false (Clause.eval_condition c (sym []))

let test_clause_atoms_action () =
  let c = Clause.If_act (Clause.Cond_not "car from left", "turn right") in
  Alcotest.(check (list string)) "atoms" [ "car from left" ] (Clause.atoms c);
  Alcotest.(check (option string)) "action" (Some "turn right") (Clause.action c)

(* ---------------- glm2fsa ---------------- *)

let test_glm2fsa_empty () =
  let c = Glm2fsa.controller ~name:"empty" [] in
  Alcotest.(check int) "one state" 1 c.Fsa.n_states;
  match Fsa.enabled c 0 (sym [ "green" ]) with
  | [ (action, 0) ] -> Alcotest.(check bool) "stops" true (Symbol.mem "stop" action)
  | _ -> Alcotest.fail "expected a single stop self-loop"

let test_glm2fsa_structure () =
  let clauses =
    [
      Clause.Observe "green traffic light";
      Clause.If_act (Clause.Cond_atom "green traffic light", "go straight");
    ]
  in
  let c = Glm2fsa.controller ~name:"go" clauses in
  Alcotest.(check int) "two states" 2 c.Fsa.n_states;
  (* state 0: observe advances regardless *)
  (match Fsa.enabled c 0 (sym []) with
  | [ (_, 1) ] -> ()
  | _ -> Alcotest.fail "observe should advance");
  (* state 1 on green: act and wrap to 0 *)
  (match Fsa.enabled c 1 (sym [ "green traffic light" ]) with
  | [ (action, 0) ] -> Alcotest.(check bool) "go" true (Symbol.mem "go straight" action)
  | _ -> Alcotest.fail "expected action transition");
  (* state 1 on red: hold with stop *)
  match Fsa.enabled c 1 (sym []) with
  | [ (action, 1) ] -> Alcotest.(check bool) "stop" true (Symbol.mem "stop" action)
  | _ -> Alcotest.fail "expected waiting transition"

let test_glm2fsa_goto () =
  let clauses =
    [
      Clause.Observe "p";
      Clause.If_goto (Clause.Cond_atom "p", 1);
      Clause.Act "turn right";
    ]
  in
  let c = Glm2fsa.controller ~name:"loop" clauses in
  (* goto satisfied: jump back to step 1 (index 0) *)
  (match Fsa.enabled c 1 (sym [ "p" ]) with
  | [ (_, 0) ] -> ()
  | _ -> Alcotest.fail "goto should jump to step 1");
  (* goto unsatisfied: fall through *)
  match Fsa.enabled c 1 (sym []) with
  | [ (_, 2) ] -> ()
  | _ -> Alcotest.fail "goto should fall through"

let test_glm2fsa_input_enabled () =
  let clauses =
    [
      Clause.Observe "green";
      Clause.If_act (Clause.Cond_atom "green", "go straight");
      Clause.If_advance (Clause.Cond_not "car");
      Clause.Act "turn right";
      Clause.If_goto (Clause.Cond_atom "green", 1);
    ]
  in
  let c = Glm2fsa.controller ~name:"total" clauses in
  let symbols = [ sym []; sym [ "green" ]; sym [ "car" ]; sym [ "green"; "car" ] ] in
  Alcotest.(check bool) "input enabled" true (Fsa.is_input_enabled c ~over:symbols)

let test_glm2fsa_wraps () =
  let clauses = [ Clause.Act "turn right" ] in
  let c = Glm2fsa.controller ~name:"wrap" clauses in
  match Fsa.enabled c 0 (sym []) with
  | [ (action, 0) ] ->
      Alcotest.(check bool) "turn" true (Symbol.mem "turn right" action)
  | _ -> Alcotest.fail "single step should wrap to itself"

(* ---------------- repair ---------------- *)

module Ltl = Dpoaf_logic.Ltl

let repair_specs =
  [
    (* Φ5-shaped: hazards forbid the action *)
    Ltl.parse_exn "G (\"car from left\" | \"pedestrian at right\" -> !\"turn right\")";
    (* Φ3-shaped: a light is required *)
    Ltl.parse_exn "G (!green -> !\"go straight\")";
    (* liveness: not propositional, must be ignored *)
    Ltl.parse_exn "G (green -> F !stop)";
    (* Φ6-shaped: trivially satisfied when acting *)
    Ltl.parse_exn "G (stop | \"go straight\" | \"turn right\")";
  ]

let repair_actions = [ "stop"; "go straight"; "turn right" ]

let test_repair_residual_hazards () =
  match
    Repair.residual_condition repair_specs ~action:"turn right"
      ~all_actions:repair_actions
  with
  | None -> Alcotest.fail "expected a residual obligation"
  | Some cond ->
      let holds atoms = Clause.eval_condition cond (sym atoms) in
      Alcotest.(check bool) "clear ok" true (holds []);
      Alcotest.(check bool) "car blocks" false (holds [ "car from left" ]);
      Alcotest.(check bool) "ped blocks" false (holds [ "pedestrian at right" ])

let test_repair_residual_light () =
  match
    Repair.residual_condition repair_specs ~action:"go straight"
      ~all_actions:repair_actions
  with
  | None -> Alcotest.fail "expected a residual obligation"
  | Some cond ->
      let holds atoms = Clause.eval_condition cond (sym atoms) in
      Alcotest.(check bool) "green required" true (holds [ "green" ]);
      Alcotest.(check bool) "red blocks" false (holds [])

let test_repair_harden_act () =
  let clauses = [ Clause.Observe "green"; Clause.Act "turn right" ] in
  match Repair.harden ~specs:repair_specs ~all_actions:repair_actions clauses with
  | [ Clause.Observe _; Clause.If_act (cond, "turn right") ] ->
      Alcotest.(check bool) "guard blocks car" false
        (Clause.eval_condition cond (sym [ "car from left" ]))
  | _ -> Alcotest.fail "unexpected hardened shape"

let test_repair_keeps_stop () =
  let clauses = [ Clause.Act "stop" ] in
  Alcotest.(check bool) "stop untouched" true
    (Repair.harden ~specs:repair_specs ~all_actions:repair_actions clauses = clauses)

let test_repair_strengthens_existing_guard () =
  let clauses =
    [ Clause.If_act (Clause.Cond_not "pedestrian at right", "turn right") ]
  in
  match Repair.harden ~specs:repair_specs ~all_actions:repair_actions clauses with
  | [ Clause.If_act (cond, "turn right") ] ->
      Alcotest.(check bool) "old guard kept" false
        (Clause.eval_condition cond (sym [ "pedestrian at right" ]));
      Alcotest.(check bool) "new guard added" false
        (Clause.eval_condition cond (sym [ "car from left" ]));
      Alcotest.(check bool) "clear passes" true (Clause.eval_condition cond (sym []))
  | _ -> Alcotest.fail "unexpected hardened shape"

(* ---------------- properties ---------------- *)

let gen_condition =
  let open QCheck.Gen in
  let atoms = [ "green"; "car"; "ped" ] in
  oneof
    [
      map (fun a -> Clause.Cond_atom a) (oneofl atoms);
      map (fun a -> Clause.Cond_not a) (oneofl atoms);
      map2
        (fun a b -> Clause.Cond_and (Clause.Cond_atom a, Clause.Cond_not b))
        (oneofl atoms) (oneofl atoms);
    ]

let gen_clause =
  let open QCheck.Gen in
  oneof
    [
      map (fun a -> Clause.Observe a) (oneofl [ "green"; "car"; "ped" ]);
      map2 (fun c a -> Clause.If_act (c, a)) gen_condition
        (oneofl [ "go"; "turn right"; "stop" ]);
      map (fun c -> Clause.If_advance c) gen_condition;
      map2 (fun c k -> Clause.If_goto (c, k)) gen_condition (int_range 0 6);
      map (fun a -> Clause.Act a) (oneofl [ "go"; "turn right" ]);
    ]

let all_symbols =
  let atoms = [ "green"; "car"; "ped" ] in
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b -> [ sym []; sym [ a ]; sym [ a; b ] ])
        atoms)
    atoms

let prop_controller_input_enabled =
  (* Every GLM2FSA-compiled controller must have an enabled move in every
     state for every observation, or the product would deadlock. *)
  QCheck.Test.make ~count:300 ~name:"glm2fsa controllers are input-enabled"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 6) gen_clause))
    (fun clauses ->
      let c = Glm2fsa.controller ~name:"rand" clauses in
      Fsa.is_input_enabled c ~over:all_symbols)

let prop_controller_emits_action =
  (* Every enabled move emits a non-empty action symbol (ε ≡ stop). *)
  QCheck.Test.make ~count:300 ~name:"glm2fsa controllers always act"
    (QCheck.make QCheck.Gen.(list_size (int_range 0 6) gen_clause))
    (fun clauses ->
      let c = Glm2fsa.controller ~name:"rand" clauses in
      List.for_all
        (fun q ->
          List.for_all
            (fun s ->
              List.for_all
                (fun (action, _) -> not (Symbol.is_empty action))
                (Fsa.enabled c q s))
            all_symbols)
        (List.init c.Fsa.n_states Fun.id))

let qsuite name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~verbose:false) tests)

let () =
  Alcotest.run "lang"
    [
      ( "lexicon",
        [
          Alcotest.test_case "exact" `Quick test_lexicon_exact;
          Alcotest.test_case "exact with stopwords" `Quick test_lexicon_exact_ignores_noise;
          Alcotest.test_case "synonym" `Quick test_lexicon_synonym;
          Alcotest.test_case "fuzzy" `Quick test_lexicon_fuzzy;
          Alcotest.test_case "no match" `Quick test_lexicon_no_match;
          Alcotest.test_case "bad synonym" `Quick test_lexicon_bad_synonym;
          Alcotest.test_case "negation" `Quick test_lexicon_negation;
        ] );
      ( "step-parser",
        [
          Alcotest.test_case "observe" `Quick test_parse_observe;
          Alcotest.test_case "if-act" `Quick test_parse_if_act;
          Alcotest.test_case "if negated" `Quick test_parse_if_negated;
          Alcotest.test_case "conjunction" `Quick test_parse_conjunction;
          Alcotest.test_case "if-check" `Quick test_parse_if_check;
          Alcotest.test_case "wait" `Quick test_parse_wait;
          Alcotest.test_case "goto" `Quick test_parse_goto;
          Alcotest.test_case "unconditional" `Quick test_parse_unconditional_action;
          Alcotest.test_case "step number" `Quick test_parse_step_number_stripped;
          Alcotest.test_case "degraded condition" `Quick test_parse_degraded_condition;
          Alcotest.test_case "failed" `Quick test_parse_failed;
          Alcotest.test_case "stats" `Quick test_parse_steps_stats;
        ] );
      ( "clause",
        [
          Alcotest.test_case "guard eval" `Quick test_clause_guard_eval;
          Alcotest.test_case "atoms and action" `Quick test_clause_atoms_action;
        ] );
      ( "glm2fsa",
        [
          Alcotest.test_case "empty" `Quick test_glm2fsa_empty;
          Alcotest.test_case "structure" `Quick test_glm2fsa_structure;
          Alcotest.test_case "goto" `Quick test_glm2fsa_goto;
          Alcotest.test_case "input enabled" `Quick test_glm2fsa_input_enabled;
          Alcotest.test_case "wraps" `Quick test_glm2fsa_wraps;
        ] );
      ( "repair",
        [
          Alcotest.test_case "residual hazards" `Quick test_repair_residual_hazards;
          Alcotest.test_case "residual light" `Quick test_repair_residual_light;
          Alcotest.test_case "harden act" `Quick test_repair_harden_act;
          Alcotest.test_case "keeps stop" `Quick test_repair_keeps_stop;
          Alcotest.test_case "strengthens guard" `Quick
            test_repair_strengthens_existing_guard;
        ] );
      qsuite "properties"
        [ prop_controller_input_enabled; prop_controller_emits_action ];
    ]
