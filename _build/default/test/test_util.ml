open Dpoaf_util

let check_float = Alcotest.(check (float 1e-9))

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues stream" (Rng.int64 a) (Rng.int64 b)

let test_rng_split_differs () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int64 a) in
  let ys = List.init 20 (fun _ -> Rng.int64 b) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 10 in
    Alcotest.(check bool) "0 <= x < 10" true (x >= 0 && x < 10)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "0 <= x < 1" true (x >= 0.0 && x < 1.0)
  done

let test_rng_float_mean () =
  let rng = Rng.create 5 in
  let xs = List.init 10_000 (fun _ -> Rng.float rng) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 0.5" true (abs_float (m -. 0.5) < 0.02)

let test_rng_gaussian_moments () =
  let rng = Rng.create 6 in
  let xs = List.init 20_000 (fun _ -> Rng.gaussian rng) in
  let m = Stats.mean xs and s = Stats.stddev xs in
  Alcotest.(check bool) "mean near 0" true (abs_float m < 0.05);
  Alcotest.(check bool) "std near 1" true (abs_float (s -. 1.0) < 0.05)

let test_rng_weighted () =
  let rng = Rng.create 9 in
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Rng.weighted rng [ ("a", 3.0); ("b", 1.0) ] = "a" then incr hits
  done;
  let frac = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "weighted ratio near 0.75" true (abs_float (frac -. 0.75) < 0.02)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let rng = Rng.create 12 in
  let arr = Array.init 20 Fun.id in
  let s = Rng.sample_without_replacement rng 5 arr in
  Alcotest.(check int) "size" 5 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "distinct" 5 (List.length distinct)

let test_stats_mean () = check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ])
let test_stats_mean_empty () = check_float "mean []" 0.0 (Stats.mean [])

let test_stats_stddev () =
  check_float "std" (sqrt 2.0) (Stats.stddev [ 1.0; 3.0; 1.0; 3.0; 0.0; 4.0 ])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [ 3.0; -1.0; 2.0 ] in
  check_float "min" (-1.0) lo;
  check_float "max" 3.0 hi

let test_stats_median () =
  check_float "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "even" 1.5 (Stats.median [ 1.0; 2.0 ])

let test_stats_percentile () =
  let xs = [ 0.0; 1.0; 2.0; 3.0; 4.0 ] in
  check_float "p0" 0.0 (Stats.percentile 0.0 xs);
  check_float "p50" 2.0 (Stats.percentile 0.5 xs);
  check_float "p100" 4.0 (Stats.percentile 1.0 xs);
  check_float "p25" 1.0 (Stats.percentile 0.25 xs)

let test_stats_fraction () =
  check_float "fraction" 0.5 (Stats.fraction (fun x -> x > 0) [ 1; -1; 2; -2 ])

let test_stats_histogram () =
  let h = Stats.histogram ~bins:2 ~lo:0.0 ~hi:1.0 [ 0.1; 0.2; 0.9; 1.5; -0.5 ] in
  Alcotest.(check (array int)) "bins" [| 3; 2 |] h

let test_stats_summary () =
  let s = Stats.summarize [ 1.0; 2.0; 3.0 ] in
  check_float "mean" 2.0 s.Stats.mean;
  Alcotest.(check int) "n" 3 s.Stats.n

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.create [ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_float_row t "x" [ 1.5 ];
  let s = Table.render t in
  Alcotest.(check bool) "header present" true
    (String.length s > 0 && String.contains s '|');
  Alcotest.(check bool) "row present" true (contains ~sub:"1.500" s)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "line" "a,\"b,c\",d" (Csv.line [ "a"; "b,c"; "d" ])

let test_csv_write () =
  let path = Filename.temp_file "dpoaf" ".csv" in
  Csv.write path ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4,5" ] ];
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "content" "x,y\n1,2\n3,\"4,5\"\n" content

let test_strext_words () =
  Alcotest.(check (list string)) "words" [ "a"; "b"; "c" ] (Strext.words "  a b\tc ")

let test_strext_lowercase_words () =
  Alcotest.(check (list string)) "clean" [ "observe"; "the"; "traffic"; "light" ]
    (Strext.lowercase_words "Observe the Traffic Light.")

let test_strext_strip_prefix () =
  Alcotest.(check (option (list string))) "strip" (Some [ "c" ])
    (Strext.strip_prefix ~prefix:[ "a"; "b" ] [ "a"; "b"; "c" ]);
  Alcotest.(check (option (list string))) "no match" None
    (Strext.strip_prefix ~prefix:[ "x" ] [ "a" ])

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "copy" `Quick test_rng_copy_independent;
          Alcotest.test_case "split" `Quick test_rng_split_differs;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "weighted" `Quick test_rng_weighted;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "mean empty" `Quick test_stats_mean_empty;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "min max" `Quick test_stats_min_max;
          Alcotest.test_case "median" `Quick test_stats_median;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "fraction" `Quick test_stats_fraction;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ( "table", [ Alcotest.test_case "render" `Quick test_table_render ] );
      ( "csv",
        [
          Alcotest.test_case "escape" `Quick test_csv_escape;
          Alcotest.test_case "write" `Quick test_csv_write;
        ] );
      ( "strext",
        [
          Alcotest.test_case "words" `Quick test_strext_words;
          Alcotest.test_case "lowercase words" `Quick test_strext_lowercase_words;
          Alcotest.test_case "strip prefix" `Quick test_strext_strip_prefix;
        ] );
    ]
