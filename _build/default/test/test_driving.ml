open Dpoaf_driving
module MC = Dpoaf_automata.Model_checker
module Ts = Dpoaf_automata.Ts
module Symbol = Dpoaf_logic.Symbol
module Ltl = Dpoaf_logic.Ltl

(* ---------------- vocabulary ---------------- *)

let test_vocab_counts () =
  Alcotest.(check int) "ten propositions" 10 (List.length Vocab.propositions);
  Alcotest.(check int) "four actions" 4 (List.length Vocab.actions)

let test_vocab_lexicon_aligns_paper_phrases () =
  let lex = Vocab.lexicon () in
  let check_prop phrase expected =
    match Dpoaf_lang.Lexicon.align lex Dpoaf_lang.Lexicon.Proposition phrase with
    | Some (c, _) -> Alcotest.(check string) phrase expected c
    | None -> Alcotest.failf "no alignment for %S" phrase
  in
  check_prop "oncoming traffic" Vocab.opposite_car;
  check_prop "left approaching car" Vocab.car_from_left;
  check_prop "right side pedestrian" Vocab.pedestrian_at_right;
  check_prop "traffic light" Vocab.green_traffic_light;
  let check_act phrase expected =
    match Dpoaf_lang.Lexicon.align lex Dpoaf_lang.Lexicon.Action phrase with
    | Some (c, _) -> Alcotest.(check string) phrase expected c
    | None -> Alcotest.failf "no alignment for %S" phrase
  in
  check_act "start moving forward" Vocab.act_go_straight;
  check_act "turn your vehicle right" Vocab.act_turn_right;
  check_act "come to a stop" Vocab.act_stop

(* ---------------- specifications ---------------- *)

let test_specs_count () =
  Alcotest.(check int) "15 specs" 15 Specs.count;
  Alcotest.(check int) "all list" 15 (List.length Specs.all);
  Alcotest.(check int) "first five" 5 (List.length Specs.first_five)

let test_specs_bounds () =
  Alcotest.(check bool) "phi 0 rejected" true
    (try ignore (Specs.phi 0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "phi 16 rejected" true
    (try ignore (Specs.phi 16); false with Invalid_argument _ -> true)

let test_specs_shapes () =
  (* Φ3 = G(¬green -> ¬go straight) *)
  (match Specs.phi 3 with
  | Ltl.Always (Ltl.Implies (Ltl.Not (Ltl.Atom g), Ltl.Not (Ltl.Atom gs))) ->
      Alcotest.(check string) "green" Vocab.green_traffic_light g;
      Alcotest.(check string) "go straight" Vocab.act_go_straight gs
  | f -> Alcotest.failf "unexpected phi_3 shape: %s" (Ltl.to_string f));
  (* Φ6 mentions all four actions *)
  let atoms = Ltl.atoms (Specs.phi 6) in
  List.iter
    (fun a -> Alcotest.(check bool) a true (Symbol.mem a atoms))
    Vocab.actions

let test_specs_rule_book_consistent () =
  (* An inconsistent rule book would make every controller fail and the
     ranking feedback vacuous.  Pairwise consistency plus the Φ1..Φ5
     conjunction is checked (the full 15-way conjunction is beyond the
     explicit tableau). *)
  List.iteri
    (fun i (ni, a) ->
      List.iteri
        (fun j (nj, b) ->
          if j > i then
            Alcotest.(check bool)
              (ni ^ " & " ^ nj)
              true
              (Dpoaf_automata.Satisfiability.is_satisfiable (Ltl.And (a, b))))
        Specs.all)
    Specs.all;
  Alcotest.(check bool) "phi_1..phi_5 conjunction" true
    (Dpoaf_automata.Satisfiability.is_satisfiable
       (Ltl.conj (List.map snd Specs.first_five)))

let test_specs_each_satisfiable_with_witness () =
  List.iter
    (fun (name, phi) ->
      match Dpoaf_automata.Satisfiability.witness phi with
      | None -> Alcotest.failf "%s unsatisfiable" name
      | Some (prefix, cycle) ->
          Alcotest.(check bool) (name ^ " witness valid") true
            (Dpoaf_logic.Trace.eval_lasso phi ~prefix ~cycle))
    Specs.all

(* ---------------- scenario models ---------------- *)

let test_models_total_and_labeled () =
  List.iter
    (fun sc ->
      let m = Models.model sc in
      Alcotest.(check bool) (Models.scenario_name sc ^ " total") true (Ts.is_total m);
      Alcotest.(check bool)
        (Models.scenario_name sc ^ " nonempty")
        true
        (Ts.n_states m > 0))
    Models.all_scenarios

let test_models_propositions_in_vocab () =
  List.iter
    (fun sc ->
      List.iter
        (fun p ->
          Alcotest.(check bool)
            (Models.scenario_name sc ^ ": " ^ p)
            true
            (List.mem p Vocab.propositions))
        (Models.scenario_propositions sc))
    Models.all_scenarios

let test_models_hazards_transient () =
  (* In every scenario, a hazard state (car or pedestrian present) never
     transitions to another hazard state: hazards clear within one step. *)
  let hazard_atoms =
    [
      Vocab.car_from_left; Vocab.car_from_right; Vocab.opposite_car;
      Vocab.pedestrian_at_left; Vocab.pedestrian_at_right;
      Vocab.pedestrian_in_front;
    ]
  in
  let is_hazard m s =
    List.exists (fun a -> Symbol.mem a (Ts.label m s)) hazard_atoms
  in
  List.iter
    (fun sc ->
      let m = Models.model sc in
      for s = 0 to Ts.n_states m - 1 do
        if is_hazard m s then
          List.iter
            (fun s' ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: hazard %d clears" (Models.scenario_name sc) s)
                false (is_hazard m s'))
            (Ts.successors m s)
      done)
    Models.all_scenarios

let test_models_hazards_reachable () =
  (* Conversely, a hazard can appear in one step from some clear state:
     needed for the paper's Φ5 edge case. *)
  List.iter
    (fun sc ->
      let m = Models.model sc in
      let hazard_exists =
        List.exists
          (fun s ->
            List.exists
              (fun s' -> not (Symbol.equal (Ts.label m s) (Ts.label m s')))
              (Ts.successors m s))
          (List.init (Ts.n_states m) Fun.id)
      in
      Alcotest.(check bool) (Models.scenario_name sc) true hazard_exists)
    Models.all_scenarios

let test_left_turn_light_recurs () =
  (* Every cycle in the left-turn-light model passes through the green
     arrow: G F green-left-turn-light holds on all paths of the model with a
     trivial always-stop controller. *)
  let ctrl = Dpoaf_lang.Glm2fsa.controller ~name:"idle" [] in
  let phi = Ltl.parse_exn "G F \"green left-turn light\"" in
  Alcotest.(check bool) "arrow recurs" true
    (MC.is_holds
       (MC.check ~model:(Models.model Models.Left_turn_light) ~controller:ctrl phi))

let test_universal_size () =
  let u = Models.universal () in
  let total =
    List.fold_left
      (fun acc sc -> acc + Ts.n_states (Models.model sc))
      0 Models.all_scenarios
  in
  Alcotest.(check int) "union size" total (Ts.n_states u);
  Alcotest.(check bool) "total" true (Ts.is_total u)

(* ---------------- tasks ---------------- *)

let test_tasks_split () =
  Alcotest.(check int) "eight tasks" 8 (List.length Tasks.all);
  Alcotest.(check int) "training" 6 (List.length Tasks.training);
  Alcotest.(check int) "validation" 2 (List.length Tasks.validation)

let test_tasks_find () =
  let t = Tasks.find "right_turn_tl" in
  Alcotest.(check string) "prompt" "turn right at the traffic light" t.Tasks.prompt;
  Alcotest.(check bool) "missing raises" true
    (try ignore (Tasks.find "nope"); false with Not_found -> true)

let test_tasks_have_candidates () =
  List.iter
    (fun t ->
      let steps = Responses.candidate_steps t in
      Alcotest.(check bool) (t.Tasks.id ^ " has steps") true (List.length steps >= 4);
      let finals = Responses.finals t in
      Alcotest.(check bool)
        (t.Tasks.id ^ " has a good final")
        true
        (List.exists (fun s -> s.Responses.quality = Responses.Good) finals))
    Tasks.all

(* ---------------- §5.1 / Appendix C worked examples ---------------- *)

let count_scenario steps scenario =
  let ctrl, _ = Evaluate.controller_of_steps ~name:"t" steps in
  Evaluate.count_specs ~model:(Models.model scenario) ctrl

let test_right_turn_before_fails_phi5 () =
  let ctrl, _ =
    Evaluate.controller_of_steps ~name:"before" Responses.right_turn_before_ft
  in
  let verdict =
    MC.check ~model:(Models.model Models.Traffic_light) ~controller:ctrl (Specs.phi 5)
  in
  (match verdict with
  | MC.Holds -> Alcotest.fail "phi_5 should fail before fine-tuning"
  | MC.Fails cex ->
      (* the violating instant has the car from the left while turning *)
      let steps = Array.of_list (cex.MC.prefix @ cex.MC.cycle) in
      let violating =
        Array.exists
          (fun s ->
            Symbol.mem Vocab.car_from_left s && Symbol.mem Vocab.act_turn_right s)
          steps
      in
      Alcotest.(check bool) "counterexample shows car+turn" true violating)

let test_right_turn_blame () =
  (* the counterexample implicates the final turn step (step 5) *)
  let ctrl, _ =
    Evaluate.controller_of_steps ~name:"before" Responses.right_turn_before_ft
  in
  match
    MC.check ~model:(Models.model Models.Traffic_light) ~controller:ctrl (Specs.phi 5)
  with
  | MC.Holds -> Alcotest.fail "phi_5 should fail"
  | MC.Fails cex ->
      let blamed = MC.blame ~spec:(Specs.phi 5) cex in
      Alcotest.(check bool) "step 5 implicated" true (List.mem 4 blamed)

let test_right_turn_example_counts () =
  (* The pre-fine-tuning controller commits the paper's safety violations
     (Φ5 with its cousins Φ9/Φ11, and Φ14 via the unguarded go-straight). *)
  Alcotest.(check int) "before: 11/15" 11
    (count_scenario Responses.right_turn_before_ft Models.Traffic_light);
  Alcotest.(check int) "after: 15/15" 15
    (count_scenario Responses.right_turn_after_ft Models.Traffic_light)

let test_left_turn_example () =
  let before = count_scenario Responses.left_turn_before_ft Models.Left_turn_light in
  let after = count_scenario Responses.left_turn_after_ft Models.Left_turn_light in
  Alcotest.(check int) "after passes all" 15 after;
  Alcotest.(check bool) "before fails some" true (before < 15);
  (* the paper highlights Φ12 *)
  let ctrl, _ =
    Evaluate.controller_of_steps ~name:"before" Responses.left_turn_before_ft
  in
  Alcotest.(check bool) "phi_12 fails" false
    (MC.is_holds
       (MC.check ~model:(Models.model Models.Left_turn_light) ~controller:ctrl
          (Specs.phi 12)))

let test_good_finals_beat_bad_finals () =
  (* For every task, a response with the good final satisfies at least as
     many specifications as the same response with a bad final — the signal
     DPO-AF ranks on. *)
  List.iter
    (fun task ->
      let obs =
        match Responses.observations task with
        | o :: _ -> [ o.Responses.text ]
        | [] -> []
      in
      let count final =
        Evaluate.count_specs_of_steps
          ~model:(Models.model task.Tasks.scenario)
          (obs @ [ final.Responses.text ])
      in
      let finals = Responses.finals task in
      let good = List.filter (fun s -> s.Responses.quality = Responses.Good) finals in
      let bad = List.filter (fun s -> s.Responses.quality = Responses.Bad) finals in
      List.iter
        (fun gstep ->
          List.iter
            (fun bstep ->
              let cg = count gstep and cb = count bstep in
              Alcotest.(check bool)
                (Printf.sprintf "%s: %S (%d) > %S (%d)" task.Tasks.id
                   gstep.Responses.text cg bstep.Responses.text cb)
                true (cg > cb))
            bad)
        good)
    Tasks.all

let test_candidate_steps_all_parse () =
  (* Every candidate step of every task must parse (possibly degraded) —
     responses built from the pools never silently lose steps. *)
  let lex = Vocab.lexicon () in
  List.iter
    (fun task ->
      List.iter
        (fun text ->
          match Dpoaf_lang.Step_parser.parse_step lex text with
          | Dpoaf_lang.Step_parser.Failed why ->
              Alcotest.failf "%s: %S failed to parse (%s)" task.Tasks.id text why
          | _ -> ())
        (Responses.candidate_steps task))
    Tasks.all

let test_parse_robust_to_detokenization () =
  (* The pipeline scores detokenized responses (lowercased, punctuation
     stripped); parsing must give the same clause as the original text.
     Regression test for the lost-comma bug. *)
  let lex = Vocab.lexicon () in
  let detok text = String.concat " " (Dpoaf_util.Strext.lowercase_words text) in
  let clause_of outcome =
    match outcome with
    | Dpoaf_lang.Step_parser.Parsed c | Dpoaf_lang.Step_parser.Degraded (c, _) ->
        Some c
    | Dpoaf_lang.Step_parser.Failed _ -> None
  in
  List.iter
    (fun task ->
      List.iter
        (fun text ->
          let original = clause_of (Dpoaf_lang.Step_parser.parse_step lex text) in
          let stripped =
            clause_of (Dpoaf_lang.Step_parser.parse_step lex (detok text))
          in
          match (original, stripped) with
          | Some a, Some b ->
              Alcotest.(check string)
                (task.Tasks.id ^ ": " ^ text)
                (Dpoaf_lang.Clause.to_string a)
                (Dpoaf_lang.Clause.to_string b)
          | _ ->
              Alcotest.failf "%s: %S parse differs across detokenization"
                task.Tasks.id text)
        (Responses.candidate_steps task))
    Tasks.all

let test_paper_examples_robust_to_detokenization () =
  let detok text = String.concat " " (Dpoaf_util.Strext.lowercase_words text) in
  let count steps scenario =
    let c, _ = Evaluate.controller_of_steps ~name:"x" steps in
    Evaluate.count_specs ~model:(Models.model scenario) c
  in
  let pairs =
    [
      (Responses.right_turn_before_ft, Models.Traffic_light);
      (Responses.right_turn_after_ft, Models.Traffic_light);
      (Responses.left_turn_before_ft, Models.Left_turn_light);
      (Responses.left_turn_after_ft, Models.Left_turn_light);
    ]
  in
  List.iter
    (fun (steps, scenario) ->
      Alcotest.(check int) "same spec count" (count steps scenario)
        (count (List.map detok steps) scenario))
    pairs

let test_evaluate_universal_default () =
  let n = Evaluate.count_specs_of_steps Responses.right_turn_after_ft in
  Alcotest.(check bool) "against universal model" true (n >= 13 && n <= 15)

let () =
  Alcotest.run "driving"
    [
      ( "vocab",
        [
          Alcotest.test_case "counts" `Quick test_vocab_counts;
          Alcotest.test_case "paper phrases align" `Quick
            test_vocab_lexicon_aligns_paper_phrases;
        ] );
      ( "specs",
        [
          Alcotest.test_case "count" `Quick test_specs_count;
          Alcotest.test_case "bounds" `Quick test_specs_bounds;
          Alcotest.test_case "shapes" `Quick test_specs_shapes;
          Alcotest.test_case "rule book consistent" `Slow test_specs_rule_book_consistent;
          Alcotest.test_case "each satisfiable" `Quick
            test_specs_each_satisfiable_with_witness;
        ] );
      ( "models",
        [
          Alcotest.test_case "total" `Quick test_models_total_and_labeled;
          Alcotest.test_case "props in vocab" `Quick test_models_propositions_in_vocab;
          Alcotest.test_case "hazards transient" `Quick test_models_hazards_transient;
          Alcotest.test_case "hazards reachable" `Quick test_models_hazards_reachable;
          Alcotest.test_case "left-turn light recurs" `Quick test_left_turn_light_recurs;
          Alcotest.test_case "universal size" `Quick test_universal_size;
        ] );
      ( "tasks",
        [
          Alcotest.test_case "split" `Quick test_tasks_split;
          Alcotest.test_case "find" `Quick test_tasks_find;
          Alcotest.test_case "candidates" `Quick test_tasks_have_candidates;
        ] );
      ( "worked-examples",
        [
          Alcotest.test_case "phi5 counterexample" `Quick test_right_turn_before_fails_phi5;
          Alcotest.test_case "blame" `Quick test_right_turn_blame;
          Alcotest.test_case "right-turn counts" `Quick test_right_turn_example_counts;
          Alcotest.test_case "left-turn example" `Quick test_left_turn_example;
          Alcotest.test_case "good beats bad" `Slow test_good_finals_beat_bad_finals;
          Alcotest.test_case "candidates parse" `Quick test_candidate_steps_all_parse;
          Alcotest.test_case "detokenization robust" `Quick
            test_parse_robust_to_detokenization;
          Alcotest.test_case "paper examples detok robust" `Quick
            test_paper_examples_robust_to_detokenization;
          Alcotest.test_case "universal default" `Quick test_evaluate_universal_default;
        ] );
    ]
