(* The Appendix-C worked example: "turn left at the traffic light" with an
   explicit left-turn signal (the Figure-15 model).

   The pre-fine-tuning response waits for the green arrow, checks oncoming
   traffic once, then turns left *twice* — the second, unguarded turn
   violates Φ12 (and Φ2).  The post-fine-tuning response re-checks the
   arrow at the turning instant and passes all fifteen specifications.

   Run with: dune exec examples/left_turn.exe *)

open Dpoaf_driving
module MC = Dpoaf_automata.Model_checker

let evaluate title steps =
  Printf.printf "=== %s ===\n" title;
  List.iter (fun s -> Printf.printf "  %s\n" s) steps;
  let controller, _ = Evaluate.controller_of_steps ~name:title steps in
  let model = Models.model Models.Left_turn_light in
  let verdicts = Evaluate.verdicts ~model controller in
  let failing =
    List.filter_map
      (fun (n, _, v) -> if MC.is_holds v then None else Some n)
      verdicts
  in
  Printf.printf "satisfied %d/15; failing: %s\n\n"
    (15 - List.length failing)
    (if failing = [] then "(none)" else String.concat ", " failing);
  (controller, model)

let () =
  let before, model = evaluate "before fine-tuning" Responses.left_turn_before_ft in
  let _after, _ = evaluate "after fine-tuning" Responses.left_turn_after_ft in

  Printf.printf "=== Φ12 counterexample (before fine-tuning) ===\n";
  Printf.printf "Φ12 = %s\n" (Dpoaf_logic.Ltl.to_string (Specs.phi 12));
  match MC.check ~model ~controller:before (Specs.phi 12) with
  | MC.Holds -> print_endline "unexpected: Φ12 holds"
  | MC.Fails cex ->
      List.iter (Printf.printf "  %s\n") cex.MC.prefix_descr;
      print_endline "  -- repeating cycle --";
      List.iter (Printf.printf "  %s\n") cex.MC.cycle_descr
