(* Grounding controllers to the real world (§5.3, Figures 12 and 13).

   The controllers' decisions depend only on visual observations, so if the
   vision model's confidence→accuracy mapping is (approximately) the same
   in simulation and reality, the formal guarantees transfer.  This example
   reproduces that consistency check with the synthetic detector.

   Run with: dune exec examples/vision_transfer.exe *)

open Dpoaf_vision
module Table = Dpoaf_util.Table
module Rng = Dpoaf_util.Rng

let () =
  let n = 30_000 in
  let sim = Detector.detect_dataset (Rng.create 1) Detector.Sim Detector.Clear ~n in
  let real = Detector.detect_dataset (Rng.create 2) Detector.Real Detector.Clear ~n in
  let sim_curve = Calibration.curve sim in
  let real_curve = Calibration.curve real in

  Printf.printf "confidence→accuracy mapping (%d detections per domain):\n\n" n;
  let table = Table.create [ "confidence bin"; "sim accuracy"; "real accuracy"; "sim n"; "real n" ] in
  List.iter2
    (fun s r ->
      Table.add_row table
        [
          Printf.sprintf "%.1f–%.1f" s.Calibration.lo s.Calibration.hi;
          Printf.sprintf "%.3f" s.Calibration.accuracy;
          Printf.sprintf "%.3f" r.Calibration.accuracy;
          string_of_int s.Calibration.count;
          string_of_int r.Calibration.count;
        ])
    sim_curve real_curve;
  Table.print table;

  Printf.printf "\nmax accuracy gap over populated bins: %.3f — %s\n"
    (Calibration.max_gap sim_curve real_curve)
    (if Calibration.consistent sim_curve real_curve then
       "consistent: controllers transfer with their guarantees (paper §5.3)"
     else "inconsistent: transfer not justified");

  (* Figure 13: behaviour across weather / lighting conditions. *)
  print_newline ();
  print_endline "detection accuracy by condition (Figure 13):";
  let table = Table.create [ "condition"; "sim"; "real" ] in
  List.iter
    (fun cond ->
      let acc domain seed =
        Detector.accuracy
          (Detector.detect_dataset (Rng.create seed) domain cond ~n:10_000)
      in
      Table.add_row table
        [
          Detector.condition_name cond;
          Printf.sprintf "%.3f" (acc Detector.Sim 11);
          Printf.sprintf "%.3f" (acc Detector.Real 12);
        ])
    Detector.all_conditions;
  Table.print table
