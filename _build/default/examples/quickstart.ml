(* Quickstart: build a world model and a controller, verify the controller
   against an LTL rule, and read the counterexample when it fails.

   Run with: dune exec examples/quickstart.exe *)

open Dpoaf_automata
module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol

let () =
  (* 1. A world model: a traffic light cycling green -> yellow -> red. *)
  let sym = Symbol.of_atoms in
  let model =
    Ts.make ~name:"traffic-light"
      ~states:
        [ ("green", sym [ "green" ]); ("yellow", sym [ "yellow" ]); ("red", sym [ "red" ]) ]
      ~transitions:[ ("green", "yellow"); ("yellow", "red"); ("red", "green") ]
      ()
  in
  Format.printf "%a@." Ts.pp model;

  (* 2. A controller: wait while the light is not green, go when it is.
     Controllers are usually built from text via Dpoaf_lang.Glm2fsa; here we
     write the FSA directly. *)
  let controller =
    Fsa.make ~name:"wait-go" ~n_states:1 ~init:0
      ~transitions:
        [
          { Fsa.src = 0; guard = Fsa.Gnot (Fsa.Gatom "green");
            action = sym [ "stop" ]; dst = 0 };
          { Fsa.src = 0; guard = Fsa.Gatom "green"; action = sym [ "go" ]; dst = 0 };
        ]
      ()
  in
  Format.printf "%a@." Fsa.pp controller;

  (* 3. Verify specifications on the product automaton. *)
  let check phi_str =
    let phi = Ltl.parse_exn phi_str in
    let verdict = Model_checker.check ~model ~controller phi in
    Format.printf "spec %-28s : %a@." phi_str Model_checker.pp_verdict verdict
  in
  check "G (go -> green)";
  check "G (red -> !go)";
  check "G F go";
  (* This one fails: the controller never goes on yellow, but the rule
     demands movement whenever the light is not red.  The counterexample is
     an infinite lasso trace. *)
  check "G (!red -> F go) -> G (yellow -> go)"
