(* Empirical evaluation in the simulated driving system (§4.2, Figure 11).

   Controllers are operated in the stochastic simulator (the Carla
   substitute); every rollout yields a grounded sequence in
   (2^P × 2^{P_A})^N that is checked against the specifications with
   finite-trace semantics, giving the satisfaction rate P_Φ.

   Run with: dune exec examples/empirical_eval.exe *)

open Dpoaf_driving
open Dpoaf_sim
module Table = Dpoaf_util.Table

let () =
  let model = Models.model Models.Traffic_light in
  let controller name steps = fst (Evaluate.controller_of_steps ~name steps) in
  let before = controller "before" Responses.right_turn_before_ft in
  let after = controller "after" Responses.right_turn_after_ft in

  let config =
    { Empirical.rollouts = 500; steps = 40;
      noise = { World.miss_rate = 0.02; false_rate = 0.01 }; seed = 2024 }
  in
  let eval c = Empirical.evaluate ~model ~controller:c ~specs:Specs.first_five config in
  let rates_before = eval before in
  let rates_after = eval after in

  Printf.printf
    "P_Φ over %d rollouts of %d steps (2%% missed / 1%% false detections):\n\n"
    config.Empirical.rollouts config.Empirical.steps;
  let table = Table.create [ "spec"; "before FT"; "after FT" ] in
  List.iter2
    (fun (name, b) (_, a) ->
      Table.add_row table
        [ name; Printf.sprintf "%.3f" b; Printf.sprintf "%.3f" a ])
    rates_before rates_after;
  Table.print table;

  (* one annotated rollout, like the paper's Figure 10 visualisation *)
  print_newline ();
  print_endline "sample rollout with the fine-tuned controller:";
  let world =
    World.create
      ~noise:{ World.miss_rate = 0.02; false_rate = 0.01 }
      ~model (Dpoaf_util.Rng.create 5)
  in
  let trace = Runner.run world after ~steps:12 (Dpoaf_util.Rng.create 6) in
  List.iteri
    (fun i step ->
      Format.printf "  t=%2d  world=%-8s  sees=%-40s acts=%a@." i
        step.Runner.world_state
        (Dpoaf_logic.Symbol.to_string step.Runner.perceived)
        Dpoaf_logic.Symbol.pp step.Runner.action)
    trace
