examples/empirical_eval.ml: Dpoaf_driving Dpoaf_logic Dpoaf_sim Dpoaf_util Empirical Evaluate Format List Models Printf Responses Runner Specs World
