examples/right_turn.ml: Dpoaf_automata Dpoaf_driving Dpoaf_lang Dpoaf_logic Evaluate List Models Printf Responses Specs String Vocab
