examples/right_turn.mli:
