examples/quickstart.mli:
