examples/vision_transfer.mli:
