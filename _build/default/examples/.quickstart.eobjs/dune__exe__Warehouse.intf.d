examples/warehouse.mli:
