examples/warehouse.ml: Dpoaf_automata Dpoaf_lang Dpoaf_logic Dpoaf_sim Dpoaf_util Glm2fsa Lexicon List Model_checker Printf Repair Step_parser String Ts
