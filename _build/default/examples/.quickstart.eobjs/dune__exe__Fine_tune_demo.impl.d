examples/fine_tune_demo.ml: Corpus Dpoaf Dpoaf_dpo Dpoaf_driving Dpoaf_lm Dpoaf_pipeline Dpoaf_util Feedback List Printf
