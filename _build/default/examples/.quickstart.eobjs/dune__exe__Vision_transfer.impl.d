examples/vision_transfer.ml: Calibration Detector Dpoaf_util Dpoaf_vision List Printf
