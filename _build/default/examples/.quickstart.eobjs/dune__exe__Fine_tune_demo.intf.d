examples/fine_tune_demo.mli:
