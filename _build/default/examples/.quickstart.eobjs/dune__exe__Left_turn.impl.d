examples/left_turn.ml: Dpoaf_automata Dpoaf_driving Dpoaf_logic Evaluate List Models Printf Responses Specs String
