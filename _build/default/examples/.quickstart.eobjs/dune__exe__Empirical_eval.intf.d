examples/empirical_eval.mli:
