examples/left_turn.mli:
