examples/quickstart.ml: Dpoaf_automata Dpoaf_logic Format Fsa Model_checker Ts
