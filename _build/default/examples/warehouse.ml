(* A second domain in ~150 lines: a warehouse robot.

   The paper notes its method "is not limited to" autonomous driving; this
   example instantiates the same machinery — vocabulary, lexicon, world
   model, LTL rule book, GLM2FSA, model checking, ranking, repair and
   runtime shielding — for a warehouse robot, with nothing imported from
   the driving domain.

   Run with: dune exec examples/warehouse.exe *)

open Dpoaf_automata
open Dpoaf_lang
module Ltl = Dpoaf_logic.Ltl
module Symbol = Dpoaf_logic.Symbol
module Rng = Dpoaf_util.Rng

(* ---- vocabulary ---- *)

let props =
  [ "obstacle ahead"; "human nearby"; "at charging station"; "battery low";
    "package ready" ]

let actions = [ "stop"; "move forward"; "pick up the package"; "dock" ]

let lexicon =
  let lex = Lexicon.create ~props ~actions in
  Lexicon.add_synonym lex Lexicon.Proposition ~canonical:"human nearby"
    ~phrase:"person in the aisle";
  Lexicon.add_synonym lex Lexicon.Action ~canonical:"move forward"
    ~phrase:"drive ahead";
  Lexicon.add_synonym lex Lexicon.Action ~canonical:"pick up the package"
    ~phrase:"grab the package";
  lex

(* ---- world model: aisle dynamics, hazards transient ---- *)

let model =
  let sym = Symbol.of_atoms in
  Ts.make ~name:"warehouse"
    ~states:
      [
        ("clear", sym [ "package ready" ]);
        ("obstacle", sym [ "obstacle ahead"; "package ready" ]);
        ("human", sym [ "human nearby"; "package ready" ]);
        ("low_battery", sym [ "battery low"; "package ready" ]);
        ("at_dock", sym [ "at charging station" ]);
      ]
    ~transitions:
      [
        ("clear", "clear"); ("clear", "obstacle"); ("clear", "human");
        ("clear", "low_battery"); ("clear", "at_dock");
        ("obstacle", "clear"); ("human", "clear");
        ("low_battery", "at_dock"); ("low_battery", "clear");
        ("at_dock", "clear"); ("at_dock", "at_dock");
      ]
    ()

(* ---- rule book ---- *)

let specs =
  let a = Ltl.atom in
  [
    ("w1", Ltl.always (Ltl.implies (a "human nearby") (Ltl.neg (a "move forward"))));
    ("w2", Ltl.always (Ltl.implies (a "obstacle ahead") (Ltl.neg (a "move forward"))));
    ("w3", Ltl.always (Ltl.implies (a "battery low") (Ltl.eventually (a "stop"))));
    ("w4",
     Ltl.always
       (Ltl.disj [ a "stop"; a "move forward"; a "pick up the package"; a "dock" ]));
    ("w5",
     Ltl.always (Ltl.implies (a "pick up the package") (a "package ready")));
    ("w6", Ltl.always (Ltl.implies (a "dock") (a "at charging station")));
  ]

let verify label steps =
  let clauses, _stats = Step_parser.parse_steps lexicon steps in
  let controller = Glm2fsa.controller ~name:label clauses in
  let verdicts = Model_checker.verify_all ~model ~controller ~specs in
  let failing =
    List.filter_map
      (fun (n, _, v) -> if Model_checker.is_holds v then None else Some n)
      verdicts
  in
  Printf.printf "%-22s satisfies %d/%d   failing: %s\n" label
    (List.length specs - List.length failing)
    (List.length specs)
    (if failing = [] then "-" else String.concat ", " failing);
  (controller, clauses)

let () =
  print_endline "rule book:";
  List.iter (fun (n, phi) -> Printf.printf "  %-3s %s\n" n (Ltl.to_string phi)) specs;
  print_newline ();

  (* Two candidate responses for "deliver the package", as a language model
     might produce them. *)
  let careless =
    [
      "1. Drive ahead.";
      "2. Grab the package.";
    ]
  in
  let careful =
    [
      "1. If no person in the aisle and no obstacle ahead, drive ahead.";
      "2. If the package ready is present, grab the package.";
      "3. If the battery low is present, execute the action stop.";
    ]
  in
  let careless_ctrl, careless_clauses = verify "careless response" careless in
  let careful_ctrl, _ = verify "careful response" careful in
  ignore careful_ctrl;

  (* the verification feedback ranks the careful response first, exactly as
     in the driving pipeline (§4.3) *)
  let count c = Model_checker.count_satisfied ~model ~controller:c ~specs in
  Printf.printf "\npreference pair: chosen = careful (%d), rejected = careless (%d)\n"
    (count (fst (verify "careful (recount)" careful)))
    (count careless_ctrl);

  (* specification-guided repair of the careless response *)
  let hardened =
    Repair.harden ~specs:(List.map snd specs) ~all_actions:actions careless_clauses
  in
  let repaired = Glm2fsa.controller ~name:"careless+repair" hardened in
  Printf.printf "after repair, the careless controller satisfies %d/%d\n"
    (count repaired) (List.length specs);

  (* the runtime shield blocks unsafe motion on the fly *)
  let shield = Dpoaf_sim.Shield.create ~specs:(List.map snd specs) ~actions in
  let forward = Symbol.singleton "move forward" in
  Printf.printf "\nshield: move forward with a human nearby -> %s\n"
    (if Dpoaf_sim.Shield.permits shield
          ~observation:(Symbol.singleton "human nearby") forward
     then "permitted" else "blocked");
  Printf.printf "shield: move forward in a clear aisle    -> %s\n"
    (if Dpoaf_sim.Shield.permits shield ~observation:Symbol.empty forward
     then "permitted" else "blocked")
