(* The paper's §5.1 worked example: "turn right at the traffic light".

   Reproduces the full verification-feedback path: the pre- and
   post-fine-tuning responses are parsed, aligned to the driving
   vocabulary, compiled to FSA controllers (GLM2FSA), implemented in the
   Figure-5 traffic-light model, and checked against the fifteen rule-book
   specifications.  The pre-fine-tuning controller fails Φ5 with the
   paper's edge case: the light turns back to red and a car arrives from
   the left right after the pedestrian check, yet the controller turns.

   Run with: dune exec examples/right_turn.exe *)

open Dpoaf_driving
module MC = Dpoaf_automata.Model_checker
module Smv = Dpoaf_automata.Smv
module SP = Dpoaf_lang.Step_parser

let show_response title steps =
  Printf.printf "=== %s ===\n" title;
  List.iter (fun s -> Printf.printf "  %s\n" s) steps;
  let lex = Vocab.lexicon () in
  Printf.printf "parsed clauses:\n";
  List.iter
    (fun s ->
      match SP.parse_step lex s with
      | SP.Parsed c -> Printf.printf "  %s\n" (Dpoaf_lang.Clause.to_string c)
      | SP.Degraded (c, why) ->
          Printf.printf "  %s   (degraded: %s)\n" (Dpoaf_lang.Clause.to_string c) why
      | SP.Failed why -> Printf.printf "  <dropped: %s>\n" why)
    steps;
  let controller, _stats = Evaluate.controller_of_steps ~name:title steps in
  let model = Models.model Models.Traffic_light in
  let verdicts = Evaluate.verdicts ~model controller in
  let sat = List.filter (fun (_, _, v) -> MC.is_holds v) verdicts in
  Printf.printf "satisfied %d/15 specifications; failing: %s\n\n"
    (List.length sat)
    (String.concat ", "
       (List.filter_map
          (fun (n, _, v) -> if MC.is_holds v then None else Some n)
          verdicts));
  controller

let () =
  let before = show_response "before fine-tuning" Responses.right_turn_before_ft in
  let after = show_response "after fine-tuning" Responses.right_turn_after_ft in

  (* The Φ5 counterexample, as discussed in the paper. *)
  Printf.printf "=== Φ5 counterexample for the pre-fine-tuning controller ===\n";
  Printf.printf "Φ5 = %s\n" (Dpoaf_logic.Ltl.to_string (Specs.phi 5));
  (match
     MC.check ~model:(Models.model Models.Traffic_light) ~controller:before
       (Specs.phi 5)
   with
  | MC.Holds -> print_endline "unexpected: Φ5 holds"
  | MC.Fails cex ->
      List.iter (Printf.printf "  %s\n") cex.MC.prefix_descr;
      print_endline "  -- repeating cycle --";
      List.iter (Printf.printf "  %s\n") cex.MC.cycle_descr;
      (* structured blame: which instruction steps are implicated *)
      Printf.printf "implicated steps: %s\n"
        (String.concat ", "
           (List.map (fun q -> Printf.sprintf "step %d" (q + 1)) (MC.blame ~spec:(Specs.phi 5) cex))));

  (* SMV export, in the style of the paper's Appendix D. *)
  print_newline ();
  print_endline "=== NuSMV export (Appendix D style) ===";
  print_string (Smv.of_controller ~name:"turn_right_after_finetune" after
                  ~props:Vocab.propositions)
