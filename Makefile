.PHONY: all build test bench check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# The one-stop gate: full build, the whole test pyramid, then a fast
# benchmark pass on two workers to exercise the parallel scheduler.
check:
	dune build
	dune runtest
	dune exec bench/main.exe -- --fast --jobs 2

clean:
	dune clean
