.PHONY: all build test bench check lint mli-check det-lint analysis-check trace-check serve-check scale-check kernels-check domains-check perf-gate obs-check refine-check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# The one-stop gate: full build, the lint + interface hygiene gates, the
# whole test pyramid, a fast benchmark pass on two workers to exercise
# the parallel scheduler, then the static-analysis and telemetry
# round-trips.
check:
	dune build
	$(MAKE) lint
	$(MAKE) mli-check
	$(MAKE) det-lint
	dune runtest
	dune exec bench/main.exe -- --fast --jobs 2
	dune exec bench/perf_gate.exe
	$(MAKE) analysis-check
	$(MAKE) trace-check
	$(MAKE) serve-check
	$(MAKE) scale-check
	$(MAKE) kernels-check
	$(MAKE) domains-check
	$(MAKE) obs-check
	$(MAKE) refine-check

# Rebuild the libraries with the unused-code warning family (26/27,
# 32..35, 69) promoted to errors — see lib/dune's `lint` env profile.
lint:
	dune build --profile lint

# Every lib/**/*.ml must publish a matching .mli.
mli-check:
	sh tools/check_mli.sh

# Determinism source lint: ban Random.self_init, Obj.magic, wall clocks
# and Hashtbl iteration order in lib/ (allowlist in
# tools/det_lint_allow with per-entry justifications).
det-lint:
	sh tools/det_lint.sh

# Static sanity round-trip over EVERY registered pack: analyzer with
# the whole-suite pass (--suite), a clean exit (no error-severity
# diagnostics), JSON artifact shapes validated (pack name in each
# header), and the docs drift gate (emitted diagnostic codes vs. the
# docs/analysis.md catalogue, both directions).
analysis-check:
	dune build bin/dpoaf_cli.exe test/analysis_validate.exe
	sh tools/analysis_check.sh

# Telemetry round-trip: record a traced 2-worker bench section, then
# validate the JSONL event log, the Perfetto trace and the metrics JSON.
trace-check:
	dune build bench/main.exe test/trace_validate.exe
	dune exec bench/main.exe -- --fast --only speedup --jobs 2 \
	  --trace _build/trace-check.jsonl --metrics-json _build/trace-check.metrics.json
	dune exec test/trace_validate.exe -- _build/trace-check.jsonl _build/trace-check.metrics.json
	dune exec bin/dpoaf_cli.exe -- report _build/trace-check.jsonl

# Fused-kernel gate: the bit-identity differential suites (fused vs
# unfused scoring, incremental vs full-context states, arena reuse vs
# fresh tapes), then a fast kernels benchmark pass, which itself exits
# non-zero if the optimized paths diverge from the reference.  See
# docs/performance.md.
kernels-check:
	dune build bench/main.exe test/test_tensor.exe test/test_lm.exe test/test_dpo.exe
	dune exec test/test_tensor.exe -- test 'fused kernels'
	dune exec test/test_tensor.exe -- test 'tape reuse'
	dune exec test/test_lm.exe -- test incremental
	dune exec test/test_dpo.exe -- test trainer -q
	dune exec bench/main.exe -- --fast --only kernels

# Serving-layer round-trip: daemon on a temp socket, a loadgen burst,
# assert completions with zero protocol errors, graceful SIGTERM drain.
serve-check:
	dune build bin/dpoaf_cli.exe
	sh tools/serve_check.sh

# Serving-scale gate: a sharded daemon on both transports (Unix + TCP),
# per-shard health rows, a short saturation sweep, response bit-identity
# across shard counts, and the BENCH_serving_scale.json schema.
scale-check:
	dune build bin/dpoaf_cli.exe bench/main.exe
	sh tools/scale_check.sh

# Perf-regression gate: run the headline bench sections (fig8 loop +
# generation latency from `kernels`, batch p99 from `serving`, the fleet
# saturation knee max_rps_at_p99 from `serving_scale`, suite pass +
# explanation wall time per pack from `analysis`, wall time per repair
# round from `refine`) into the dated results series at bench/results/,
# then compare latest.json against the pinned baseline.json (worse than
# tolerance on any headline metric fails — 10% slower for wall-clock
# metrics, 50% lower for throughput metrics, whose knees swing with box
# load; first run pins a fresh baseline).  Re-pin
# deliberately with `dune exec bench/perf_gate.exe -- --rebase`.
perf-gate:
	dune build bench/main.exe bench/perf_gate.exe
	dune exec bench/main.exe -- --fast --only kernels,serving,serving_scale,analysis,refine --jobs 2
	dune exec bench/perf_gate.exe

# Ops-plane gate: daemon with an event journal on a temp socket, stats
# and health queried mid-load (JSON and Prometheus), journal validated
# by `report --journal`, and the perf gate exercised on a throwaway
# results series (fresh baseline passes, degraded baseline fails).
obs-check:
	dune build bin/dpoaf_cli.exe bench/main.exe bench/perf_gate.exe
	sh tools/obs_check.sh

# Refinement gate: the offline must-repair case (>= 80% of the driving
# pack's seeded defects improve within 3 rounds, harvested store
# validates non-empty), then a daemon with --journal and --pref-store
# under a refine-weighted loadgen mix: zero errors, serve.refine_round
# events in the journal, and a valid harvested store after SIGTERM.
refine-check:
	dune build bin/dpoaf_cli.exe
	sh tools/refine_check.sh

# Domain-pack gate: every registered pack (dpoaf_cli domains) must clear
# the static analysis gates and run verify -> finetune -> simulate
# through --domain.  lib/domain needs no extra mli-check wiring: the
# lib/*/*.ml glob in tools/check_mli.sh already covers it.
domains-check:
	dune build bin/dpoaf_cli.exe
	sh tools/domains_check.sh

clean:
	dune clean
