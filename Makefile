.PHONY: all build test bench check trace-check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# The one-stop gate: full build, the whole test pyramid, a fast benchmark
# pass on two workers to exercise the parallel scheduler, then the
# telemetry round-trip.
check:
	dune build
	dune runtest
	dune exec bench/main.exe -- --fast --jobs 2
	$(MAKE) trace-check

# Telemetry round-trip: record a traced 2-worker bench section, then
# validate the JSONL event log, the Perfetto trace and the metrics JSON.
trace-check:
	dune build bench/main.exe test/trace_validate.exe
	dune exec bench/main.exe -- --fast --only speedup --jobs 2 \
	  --trace _build/trace-check.jsonl --metrics-json _build/trace-check.metrics.json
	dune exec test/trace_validate.exe -- _build/trace-check.jsonl _build/trace-check.metrics.json
	dune exec bin/dpoaf_cli.exe -- report _build/trace-check.jsonl

clean:
	dune clean
