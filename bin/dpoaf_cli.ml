(* Command-line interface to the DPO-AF pipeline.

   dpoaf_cli tasks                        list control tasks
   dpoaf_cli specs                        list the 15 LTL specifications
   dpoaf_cli verify --step "..." ...      verify a response's steps
   dpoaf_cli synthesize --task ID         sample + rank responses
   dpoaf_cli finetune --out model.ckpt    run the full DPO-AF pipeline
   dpoaf_cli simulate --task ID           empirical P_Φ in the simulator
   dpoaf_cli smv --step "..." ...         export a controller to NuSMV *)

open Cmdliner
open Dpoaf_driving
module MC = Dpoaf_automata.Model_checker
module Pipeline = Dpoaf_pipeline
module Rng = Dpoaf_util.Rng
module Table = Dpoaf_util.Table

(* ---------------- shared arguments ---------------- *)

let scenario_of_string = function
  | "traffic_light" -> Some Models.Traffic_light
  | "left_turn_light" -> Some Models.Left_turn_light
  | "two_way_stop" -> Some Models.Two_way_stop
  | "roundabout" -> Some Models.Roundabout
  | "wide_median" -> Some Models.Wide_median
  | "universal" | _ -> None

let scenario_arg =
  let doc =
    "World model to verify against: traffic_light, left_turn_light, \
     two_way_stop, roundabout, wide_median, or universal (default)."
  in
  Arg.(value & opt string "universal" & info [ "scenario" ] ~docv:"MODEL" ~doc)

let steps_arg =
  let doc = "One instruction step (repeatable, in order)." in
  Arg.(value & opt_all string [] & info [ "step"; "s" ] ~docv:"TEXT" ~doc)

let task_arg =
  let doc = "Task id (see `dpoaf_cli tasks`)." in
  Arg.(value & opt string "right_turn_tl" & info [ "task" ] ~docv:"ID" ~doc)

let seed_arg =
  Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let jobs_arg =
  let doc =
    "Worker domains for parallel scoring, rollouts and multi-seed training. \
     Results are identical for every value (the scheduler preserves order \
     and RNG streams); 1 disables parallelism."
  in
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ -> Error (`Msg "expected a positive integer")
      | None -> Error (`Msg "expected an integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt pos_int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let set_jobs n = Dpoaf_exec.Pool.set_default_jobs n

let model_of_scenario name =
  match scenario_of_string name with
  | Some sc -> Models.model sc
  | None -> Models.universal ()

(* ---------------- tasks ---------------- *)

let run_tasks () =
  let table = Table.create [ "id"; "prompt"; "scenario"; "split" ] in
  List.iter
    (fun t ->
      Table.add_row table
        [
          t.Tasks.id;
          t.Tasks.prompt;
          Models.scenario_name t.Tasks.scenario;
          (match t.Tasks.split with Tasks.Training -> "training" | Tasks.Validation -> "validation");
        ])
    Tasks.all;
  Table.print table

let tasks_cmd =
  Cmd.v (Cmd.info "tasks" ~doc:"List the control tasks.")
    Term.(const run_tasks $ const ())

(* ---------------- specs ---------------- *)

let run_specs () =
  List.iter
    (fun (name, phi) ->
      Printf.printf "%-8s %s\n" name (Dpoaf_logic.Ltl.to_string phi))
    Specs.all

let specs_cmd =
  Cmd.v (Cmd.info "specs" ~doc:"List the 15 LTL rule-book specifications.")
    Term.(const run_specs $ const ())

(* ---------------- verify ---------------- *)

let run_verify steps scenario =
  let steps =
    if steps <> [] then steps
    else begin
      print_endline "(no --step given: verifying the paper's §5.1 pre-fine-tuning response)";
      Responses.right_turn_before_ft
    end
  in
  let controller, stats = Evaluate.controller_of_steps ~name:"cli" steps in
  Printf.printf "parsed %d/%d steps (%d degraded, %d dropped)\n"
    (stats.Dpoaf_lang.Step_parser.total - stats.Dpoaf_lang.Step_parser.failed)
    stats.Dpoaf_lang.Step_parser.total stats.Dpoaf_lang.Step_parser.degraded
    stats.Dpoaf_lang.Step_parser.failed;
  let model = model_of_scenario scenario in
  let verdicts = Evaluate.verdicts ~model controller in
  List.iter
    (fun (name, phi, verdict) ->
      Printf.printf "%-8s %-60s %s\n" name
        (Dpoaf_logic.Ltl.to_string phi)
        (match verdict with MC.Holds -> "holds" | MC.Fails _ -> "FAILS"))
    verdicts;
  let sat = List.length (List.filter (fun (_, _, v) -> MC.is_holds v) verdicts) in
  Printf.printf "satisfied: %d/%d\n" sat (List.length verdicts);
  List.iter
    (fun (name, _, verdict) ->
      match verdict with
      | MC.Holds -> ()
      | MC.Fails cex ->
          Printf.printf "\ncounterexample for %s:\n" name;
          List.iter (Printf.printf "  %s\n") cex.MC.prefix_descr;
          print_endline "  -- cycle --";
          List.iter (Printf.printf "  %s\n") cex.MC.cycle_descr)
    (List.filteri (fun i _ -> i < 1) (List.filter (fun (_, _, v) -> not (MC.is_holds v)) verdicts))

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify a response's steps against the rule book.")
    Term.(const run_verify $ steps_arg $ scenario_arg)

(* ---------------- synthesize ---------------- *)

let run_synthesize task_id n seed =
  let task = try Tasks.find task_id with Not_found -> failwith ("unknown task " ^ task_id) in
  let corpus = Pipeline.Corpus.build () in
  let rng = Rng.create seed in
  Printf.printf "pre-training the language model (seed %d)...\n%!" seed;
  let model = Pipeline.Corpus.pretrained_model rng corpus in
  let feedback = Pipeline.Feedback.create () in
  let setup = Pipeline.Corpus.setup corpus task in
  let snap = Dpoaf_lm.Sampler.snapshot model in
  Printf.printf "sampling %d responses for %S:\n\n" n task.Tasks.prompt;
  List.iter
    (fun i ->
      let tokens =
        Dpoaf_lm.Sampler.sample snap rng ~prompt:setup.Pipeline.Corpus.prompt
          ~grammar:setup.Pipeline.Corpus.grammar
          ~min_clauses:setup.Pipeline.Corpus.min_clauses
          ~max_clauses:setup.Pipeline.Corpus.max_clauses ()
      in
      let score = Pipeline.Feedback.score_tokens feedback ~corpus setup tokens in
      Printf.printf "response %d — satisfies %d/15 specifications:\n" (i + 1) score;
      List.iteri
        (fun j s -> Printf.printf "  %d. %s\n" (j + 1) s)
        (Pipeline.Corpus.steps_of_tokens corpus tokens);
      print_newline ())
    (List.init n Fun.id)

let synthesize_cmd =
  let n_arg =
    Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of responses.")
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:"Sample responses from the pre-trained model and rank them by verification.")
    Term.(const run_synthesize $ task_arg $ n_arg $ seed_arg)

(* ---------------- finetune ---------------- *)

let run_finetune epochs seeds out seed jobs =
  set_jobs jobs;
  let corpus = Pipeline.Corpus.build () in
  let rng = Rng.create seed in
  Printf.printf "pre-training the language model...\n%!";
  let reference = Pipeline.Corpus.pretrained_model rng corpus in
  let feedback = Pipeline.Feedback.create () in
  let config =
    {
      Pipeline.Dpoaf.default_config with
      trainer =
        {
          Dpoaf_dpo.Trainer.default_config with
          epochs;
          checkpoint_every = max 1 (epochs / 10);
          lr = 2e-3;
        };
    }
  in
  Printf.printf "running DPO-AF (%d epochs, %d seed(s))...\n%!" epochs (List.length seeds);
  let result = Pipeline.Dpoaf.run ~config ~corpus ~feedback ~reference ~seeds rng in
  Printf.printf "mined %d preference pairs\n" result.Pipeline.Dpoaf.pairs_used;
  let stats = Pipeline.Feedback.cache_stats feedback in
  Printf.printf "verifier cache: %d hits / %d misses (%d entries)\n"
    stats.Dpoaf_exec.Cache.hits stats.Dpoaf_exec.Cache.misses
    stats.Dpoaf_exec.Cache.size;
  List.iter
    (fun c ->
      Printf.printf "epoch %3d: training %.2f/15  validation %.2f/15\n"
        c.Pipeline.Dpoaf.epoch c.Pipeline.Dpoaf.training_score
        c.Pipeline.Dpoaf.validation_score)
    result.Pipeline.Dpoaf.curve;
  (match (result.Pipeline.Dpoaf.runs, out) with
  | run :: _, Some path ->
      Dpoaf_lm.Checkpoint.save run.Dpoaf_dpo.Trainer.final path;
      Printf.printf "saved fine-tuned model to %s\n" path
  | _ -> ())

let finetune_cmd =
  let epochs_arg =
    Arg.(value & opt int 100 & info [ "epochs" ] ~docv:"N" ~doc:"DPO epochs.")
  in
  let seeds_arg =
    Arg.(value & opt (list int) [ 1 ] & info [ "seeds" ] ~docv:"S1,S2" ~doc:"Seeds.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
         ~doc:"Save the fine-tuned checkpoint.")
  in
  Cmd.v
    (Cmd.info "finetune" ~doc:"Run the full DPO-AF pipeline.")
    Term.(const run_finetune $ epochs_arg $ seeds_arg $ out_arg $ seed_arg $ jobs_arg)

(* ---------------- simulate ---------------- *)

let run_simulate task_id rollouts steps miss false_rate seed jobs =
  set_jobs jobs;
  let task = try Tasks.find task_id with Not_found -> failwith ("unknown task " ^ task_id) in
  let model = Models.model task.Tasks.scenario in
  let response =
    match task_id with
    | "left_turn_ll" -> Responses.left_turn_after_ft
    | _ -> Responses.right_turn_after_ft
  in
  let controller, _ = Evaluate.controller_of_steps ~name:task_id response in
  let config =
    { Dpoaf_sim.Empirical.rollouts; steps;
      noise = { Dpoaf_sim.World.miss_rate = miss; false_rate }; seed }
  in
  let rates =
    Dpoaf_sim.Empirical.evaluate ~model ~controller ~specs:Specs.all config
  in
  Printf.printf "empirical P_Φ over %d rollouts × %d steps in %s:\n" rollouts steps
    (Models.scenario_name task.Tasks.scenario);
  List.iter (fun (name, rate) -> Printf.printf "  %-8s %.3f\n" name rate) rates

let simulate_cmd =
  let rollouts_arg =
    Arg.(value & opt int 300 & info [ "rollouts" ] ~docv:"N" ~doc:"Rollouts.")
  in
  let steps_arg =
    Arg.(value & opt int 40 & info [ "length" ] ~docv:"N" ~doc:"Steps per rollout.")
  in
  let miss_arg =
    Arg.(value & opt float 0.02 & info [ "miss" ] ~docv:"P" ~doc:"Missed-detection rate.")
  in
  let false_arg =
    Arg.(value & opt float 0.01 & info [ "false" ] ~docv:"P" ~doc:"False-detection rate.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Empirical evaluation in the simulated system.")
    Term.(const run_simulate $ task_arg $ rollouts_arg $ steps_arg $ miss_arg
          $ false_arg $ seed_arg $ jobs_arg)

(* ---------------- smv ---------------- *)

let run_smv steps =
  let steps = if steps <> [] then steps else Responses.right_turn_after_ft in
  let controller, _ = Evaluate.controller_of_steps ~name:"exported" steps in
  print_string (Dpoaf_automata.Smv.of_controller ~name:"controller" controller
                  ~props:Vocab.propositions)

let smv_cmd =
  Cmd.v
    (Cmd.info "smv" ~doc:"Export a response's controller to NuSMV syntax.")
    Term.(const run_smv $ steps_arg)

(* ---------------- main ---------------- *)

let () =
  let info =
    Cmd.info "dpoaf_cli" ~version:"1.0"
      ~doc:"Fine-tuning language models using formal methods feedback (DPO-AF)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ tasks_cmd; specs_cmd; verify_cmd; synthesize_cmd; finetune_cmd;
            simulate_cmd; smv_cmd ]))
