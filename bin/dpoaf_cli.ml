(* Command-line interface to the DPO-AF pipeline.

   dpoaf_cli domains                      list registered domain packs
   dpoaf_cli tasks [--domain D]           list a pack's control tasks
   dpoaf_cli specs [--domain D]           list a pack's LTL rule book
   dpoaf_cli verify --step "..." ...      verify a response's steps
   dpoaf_cli synthesize --task ID         sample + rank responses
   dpoaf_cli finetune --out model.ckpt    run the full DPO-AF pipeline
   dpoaf_cli simulate --task ID           empirical P_Φ in the simulator
   dpoaf_cli report trace.jsonl           summarize a recorded trace
   dpoaf_cli smv --step "..." ...         export a controller to NuSMV
   dpoaf_cli serve --socket PATH          batched serving daemon (NDJSON)
   dpoaf_cli loadgen --rate N             replay synthetic traffic at it

   Every pipeline-facing subcommand takes --domain NAME (default:
   driving, the paper's use case); unknown names are rejected with the
   registered list, never silently defaulted. *)

open Cmdliner
module Domain = Dpoaf_domain.Domain
module MC = Dpoaf_automata.Model_checker
module Pipeline = Dpoaf_pipeline
module Rng = Dpoaf_util.Rng
module Table = Dpoaf_util.Table
module Metrics = Dpoaf_exec.Metrics
module Span = Dpoaf_exec.Trace

(* ---------------- shared arguments ---------------- *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("error: " ^ msg);
      exit 1)
    fmt

(* strict: an unknown domain name is a usage error listing the
   registered packs, never a silent fallback to driving *)
let domain_conv =
  let parse s =
    match Dpoaf_domain.find s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown domain %S; expected one of: %s" s
                (String.concat ", " (Dpoaf_domain.names ()))))
  in
  let print ppf d = Format.pp_print_string ppf (Domain.name d) in
  Arg.conv (parse, print)

let domain_arg =
  let doc =
    "Domain pack to operate in (see `dpoaf_cli domains`). Unknown names \
     are rejected."
  in
  Arg.(
    value
    & opt domain_conv (Dpoaf_domain.find_exn Dpoaf_domain.default)
    & info [ "domain" ] ~docv:"NAME" ~doc)

(* scenario validity depends on the chosen pack, so the name is resolved
   (strictly) at run time via [Domain.model_of_scenario] *)
let scenario_arg =
  let doc =
    "World model to verify against: one of the pack's scenarios (see \
     `dpoaf_cli tasks`) or universal (default). Unknown names are \
     rejected."
  in
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"MODEL" ~doc)

let resolve_model domain scenario =
  match Domain.model_of_scenario domain scenario with
  | Ok model -> model
  | Error msg -> die "%s" msg

let steps_arg =
  let doc = "One instruction step (repeatable, in order)." in
  Arg.(value & opt_all string [] & info [ "step"; "s" ] ~docv:"TEXT" ~doc)

let task_arg =
  let doc =
    "Task id (see `dpoaf_cli tasks`; default: the pack's first task)."
  in
  Arg.(value & opt (some string) None & info [ "task" ] ~docv:"ID" ~doc)

let resolve_task domain = function
  | Some id -> (
      match Domain.find_task domain id with
      | Some t -> t
      | None ->
          die "unknown task %S in domain %S (valid: %s)" id
            (Domain.name domain)
            (String.concat ", "
               (List.map (fun t -> t.Domain.id) (Domain.tasks domain))))
  | None -> (
      match Domain.tasks domain with
      | t :: _ -> t
      | [] -> die "domain %S has no tasks" (Domain.name domain))

(* the worked example to fall back on when no --step is given: the
   post-fine-tuning demo response whose name shares the longest prefix
   with the task id (e.g. left_turn_ll -> left_turn_after_ft) *)
let demo_response_for domain task_id =
  let (module D : Domain.S) = domain in
  let after_ft (name, _) =
    let suffix = "_after_ft" in
    String.length name >= String.length suffix
    && String.sub name
         (String.length name - String.length suffix)
         (String.length suffix)
       = suffix
  in
  let common_prefix a b =
    let n = min (String.length a) (String.length b) in
    let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
    go 0
  in
  let candidates =
    match List.filter after_ft D.demo_responses with
    | [] -> D.demo_responses
    | cs -> cs
  in
  match candidates with
  | [] -> die "domain %S has no demo responses" D.name
  | first :: _ ->
      List.fold_left
        (fun (bn, bs) (n, s) ->
          if common_prefix n task_id > common_prefix bn task_id then (n, s)
          else (bn, bs))
        first candidates

let seed_arg =
  Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

let jobs_arg =
  let doc =
    "Worker domains for parallel scoring, rollouts and multi-seed training. \
     Results are identical for every value (the scheduler preserves order \
     and RNG streams); 1 disables parallelism."
  in
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ -> Error (`Msg "expected a positive integer")
      | None -> Error (`Msg "expected an integer")
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt pos_int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let set_jobs n = Dpoaf_exec.Pool.set_default_jobs n

let trace_arg =
  let doc =
    "Record spans and metrics to $(docv) (JSONL, readable by `dpoaf_cli \
     report`); a Chrome/Perfetto trace is written alongside as \
     $(docv).perfetto.json."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_json_arg =
  let doc = "Write the metrics summary (counters, timers, histogram \
             percentiles) as JSON to $(docv)." in
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE" ~doc)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc contents

(* Enable tracing up front when requested, run the command body, then
   flush the trace (JSONL + sibling Perfetto file) and metrics summary. *)
let with_telemetry ~trace ~metrics_json f =
  if trace <> None then Span.enable ();
  let finish () =
    (match trace with
    | None -> ()
    | Some path ->
        Span.write_jsonl path;
        Span.write_chrome (path ^ ".perfetto.json");
        Printf.printf "trace written to %s (and %s.perfetto.json)\n" path path);
    match metrics_json with
    | None -> ()
    | Some path ->
        write_file path (Metrics.to_json () ^ "\n");
        Printf.printf "metrics written to %s\n" path
  in
  Fun.protect ~finally:finish f

(* ---------------- domains ---------------- *)

let run_domains quiet =
  if quiet then List.iter print_endline (Dpoaf_domain.names ())
  else begin
    let table =
      Table.create [ "name"; "tasks"; "specs"; "scenarios"; "actions" ]
    in
    List.iter
      (fun domain ->
        let (module D : Domain.S) = domain in
        Table.add_row table
          [
            D.name;
            string_of_int (List.length D.tasks);
            string_of_int (Domain.spec_count domain);
            string_of_int (List.length D.scenarios);
            string_of_int (List.length D.actions);
          ])
      (Dpoaf_domain.all ());
    Table.print table
  end

let domains_cmd =
  let quiet_arg =
    Arg.(value & flag
         & info [ "quiet"; "q" ] ~doc:"Print one pack name per line.")
  in
  Cmd.v
    (Cmd.info "domains" ~doc:"List the registered domain packs.")
    Term.(const run_domains $ quiet_arg)

(* ---------------- tasks ---------------- *)

let run_tasks domain =
  let table = Table.create [ "id"; "prompt"; "scenario"; "split" ] in
  List.iter
    (fun t ->
      Table.add_row table
        [
          t.Domain.id;
          t.Domain.prompt;
          t.Domain.scenario;
          (match t.Domain.split with
          | Domain.Training -> "training"
          | Domain.Validation -> "validation");
        ])
    (Domain.tasks domain);
  Table.print table

let tasks_cmd =
  Cmd.v (Cmd.info "tasks" ~doc:"List a domain pack's control tasks.")
    Term.(const run_tasks $ domain_arg)

(* ---------------- specs ---------------- *)

let run_specs domain =
  let (module D : Domain.S) = domain in
  List.iter
    (fun (name, phi) ->
      Printf.printf "%-8s %s\n" name (Dpoaf_logic.Ltl.to_string phi))
    (D.specs ())

let specs_cmd =
  Cmd.v
    (Cmd.info "specs" ~doc:"List a domain pack's LTL rule-book specifications.")
    Term.(const run_specs $ domain_arg)

(* ---------------- verify ---------------- *)

let run_verify domain steps scenario =
  let (module D : Domain.S) = domain in
  let steps =
    if steps <> [] then steps
    else begin
      let name, demo =
        match D.demo_responses with
        | first :: _ -> first
        | [] -> die "domain %S has no demo responses" D.name
      in
      Printf.printf "(no --step given: verifying the %s demo response %S)\n"
        D.name name;
      demo
    end
  in
  let controller, stats = D.controller_of_steps ~name:"cli" steps in
  Printf.printf "parsed %d/%d steps (%d degraded, %d dropped)\n"
    (stats.Dpoaf_lang.Step_parser.total - stats.Dpoaf_lang.Step_parser.failed)
    stats.Dpoaf_lang.Step_parser.total stats.Dpoaf_lang.Step_parser.degraded
    stats.Dpoaf_lang.Step_parser.failed;
  let model = resolve_model domain scenario in
  let verdicts = MC.verify_all ~model ~controller ~specs:(D.specs ()) in
  List.iter
    (fun (name, phi, verdict) ->
      Printf.printf "%-8s %-60s %s\n" name
        (Dpoaf_logic.Ltl.to_string phi)
        (match verdict with MC.Holds -> "holds" | MC.Fails _ -> "FAILS"))
    verdicts;
  let sat = List.length (List.filter (fun (_, _, v) -> MC.is_holds v) verdicts) in
  Printf.printf "satisfied: %d/%d\n" sat (List.length verdicts);
  List.iter
    (fun (name, _, verdict) ->
      match verdict with
      | MC.Holds -> ()
      | MC.Fails cex ->
          Printf.printf "\ncounterexample for %s:\n" name;
          List.iter (Printf.printf "  %s\n") cex.MC.prefix_descr;
          print_endline "  -- cycle --";
          List.iter (Printf.printf "  %s\n") cex.MC.cycle_descr)
    (List.filteri (fun i _ -> i < 1) (List.filter (fun (_, _, v) -> not (MC.is_holds v)) verdicts))

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify a response's steps against the rule book.")
    Term.(const run_verify $ domain_arg $ steps_arg $ scenario_arg)

(* ---------------- synthesize ---------------- *)

let run_synthesize domain task_id n seed =
  let task = resolve_task domain task_id in
  let corpus = Pipeline.Corpus.build ~domain () in
  let rng = Rng.create seed in
  Printf.printf "pre-training the %s language model (seed %d)...\n%!"
    (Domain.name domain) seed;
  let model = Pipeline.Corpus.pretrained_model rng corpus in
  let feedback = Pipeline.Feedback.create ~domain () in
  let setup = Pipeline.Corpus.setup corpus task in
  let snap = Dpoaf_lm.Sampler.snapshot model in
  Printf.printf "sampling %d responses for %S:\n\n" n task.Domain.prompt;
  List.iter
    (fun i ->
      let tokens =
        Dpoaf_lm.Sampler.sample snap rng ~prompt:setup.Pipeline.Corpus.prompt
          ~grammar:setup.Pipeline.Corpus.grammar
          ~min_clauses:setup.Pipeline.Corpus.min_clauses
          ~max_clauses:setup.Pipeline.Corpus.max_clauses ()
      in
      let score = Pipeline.Feedback.score_tokens feedback ~corpus setup tokens in
      Printf.printf "response %d — satisfies %d/%d specifications:\n" (i + 1)
        score (Domain.spec_count domain);
      List.iteri
        (fun j s -> Printf.printf "  %d. %s\n" (j + 1) s)
        (Pipeline.Corpus.steps_of_tokens corpus tokens);
      print_newline ())
    (List.init n Fun.id)

let synthesize_cmd =
  let n_arg =
    Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of responses.")
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:"Sample responses from the pre-trained model and rank them by verification.")
    Term.(const run_synthesize $ domain_arg $ task_arg $ n_arg $ seed_arg)

(* ---------------- finetune ---------------- *)

let run_finetune domain epochs seeds out seed jobs trace metrics_json =
  set_jobs jobs;
  with_telemetry ~trace ~metrics_json @@ fun () ->
  let corpus = Pipeline.Corpus.build ~domain () in
  let rng = Rng.create seed in
  Printf.printf "pre-training the %s language model...\n%!"
    (Domain.name domain);
  let reference = Pipeline.Corpus.pretrained_model rng corpus in
  let feedback = Pipeline.Feedback.create ~domain () in
  let config =
    {
      Pipeline.Dpoaf.default_config with
      trainer =
        {
          Dpoaf_dpo.Trainer.default_config with
          epochs;
          checkpoint_every = max 1 (epochs / 10);
          lr = 2e-3;
        };
    }
  in
  Printf.printf "running DPO-AF (%d epochs, %d seed(s))...\n%!" epochs (List.length seeds);
  let sink, close_sink =
    match out with
    | None -> (None, fun () -> ())
    | Some path ->
        let steps_path = path ^ ".steps.csv" in
        let sink, close = Dpoaf_dpo.Trainer.file_sink steps_path in
        Printf.printf "streaming per-step training records to %s\n%!" steps_path;
        (Some sink, close)
  in
  let result =
    Fun.protect ~finally:close_sink @@ fun () ->
    Pipeline.Dpoaf.run ~config ?sink ~corpus ~feedback ~reference ~seeds rng
  in
  Printf.printf "mined %d preference pairs\n" result.Pipeline.Dpoaf.pairs_used;
  let stats = Pipeline.Feedback.cache_stats feedback in
  Printf.printf "verifier cache: %d hits / %d misses (%d entries)\n"
    stats.Dpoaf_exec.Cache.hits stats.Dpoaf_exec.Cache.misses
    stats.Dpoaf_exec.Cache.size;
  let total = Domain.spec_count domain in
  List.iter
    (fun c ->
      Printf.printf "epoch %3d: training %.2f/%d  validation %.2f/%d\n"
        c.Pipeline.Dpoaf.epoch c.Pipeline.Dpoaf.training_score total
        c.Pipeline.Dpoaf.validation_score total)
    result.Pipeline.Dpoaf.curve;
  (match (result.Pipeline.Dpoaf.runs, out) with
  | run :: _, Some path ->
      Dpoaf_lm.Checkpoint.save run.Dpoaf_dpo.Trainer.final path;
      Printf.printf "saved fine-tuned model to %s\n" path
  | _ -> ())

let finetune_cmd =
  let epochs_arg =
    Arg.(value & opt int 100 & info [ "epochs" ] ~docv:"N" ~doc:"DPO epochs.")
  in
  let seeds_arg =
    Arg.(value & opt (list int) [ 1 ] & info [ "seeds" ] ~docv:"S1,S2" ~doc:"Seeds.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
         ~doc:"Save the fine-tuned checkpoint.")
  in
  Cmd.v
    (Cmd.info "finetune" ~doc:"Run the full DPO-AF pipeline.")
    Term.(const run_finetune $ domain_arg $ epochs_arg $ seeds_arg $ out_arg
          $ seed_arg $ jobs_arg $ trace_arg $ metrics_json_arg)

(* ---------------- simulate ---------------- *)

let run_simulate domain task_id steps_override rollouts steps miss false_rate
    seed jobs trace metrics_json =
  set_jobs jobs;
  with_telemetry ~trace ~metrics_json @@ fun () ->
  let (module D : Domain.S) = domain in
  let task = resolve_task domain task_id in
  let model = resolve_model domain (Some task.Domain.scenario) in
  let response =
    if steps_override <> [] then steps_override
    else snd (demo_response_for domain task.Domain.id)
  in
  let controller, _ = D.controller_of_steps ~name:task.Domain.id response in
  let config =
    { Dpoaf_sim.Empirical.rollouts; steps;
      noise = { Dpoaf_sim.World.miss_rate = miss; false_rate }; seed }
  in
  let rates =
    Dpoaf_sim.Empirical.evaluate ~domain:D.name ~model ~controller
      ~specs:(D.specs ()) config
  in
  Printf.printf "empirical P_Φ over %d rollouts × %d steps in %s:\n" rollouts
    steps task.Domain.scenario;
  List.iter (fun (name, rate) -> Printf.printf "  %-8s %.3f\n" name rate) rates

let simulate_cmd =
  let rollouts_arg =
    Arg.(value & opt int 300 & info [ "rollouts" ] ~docv:"N" ~doc:"Rollouts.")
  in
  let length_arg =
    Arg.(value & opt int 40 & info [ "length" ] ~docv:"N" ~doc:"Steps per rollout.")
  in
  let miss_arg =
    Arg.(value & opt float 0.02 & info [ "miss" ] ~docv:"P" ~doc:"Missed-detection rate.")
  in
  let false_arg =
    Arg.(value & opt float 0.01 & info [ "false" ] ~docv:"P" ~doc:"False-detection rate.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Empirical evaluation in the simulated system.")
    Term.(const run_simulate $ domain_arg $ task_arg $ steps_arg $ rollouts_arg
          $ length_arg $ miss_arg $ false_arg $ seed_arg $ jobs_arg $ trace_arg
          $ metrics_json_arg)

(* ---------------- report ---------------- *)

let exact_percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* render one `name count bar` block, numerically ordered on the phi_N
   suffix so phi_2 sorts before phi_10 *)
let print_violation_bars violations =
  let keyed =
    List.sort compare
      (List.map
         (fun (name, v) ->
           let num =
             match String.split_on_char '_' name with
             | [ _; n ] -> ( try int_of_string n with _ -> max_int)
             | _ -> max_int
           in
           (num, name, v))
         violations)
  in
  let peak = List.fold_left (fun acc (_, _, v) -> max acc v) 1.0 keyed in
  List.iter
    (fun (_, name, v) ->
      let bar = int_of_float (40.0 *. v /. peak) in
      Printf.printf "  %-8s %8.0f %s\n" name v (String.make bar '#'))
    keyed

let run_report path =
  let reader = Span.read_jsonl path in
  (* per-stage latency: spans grouped by name, exact percentiles over the
     recorded durations *)
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (e : Span.event) ->
      let durs = try Hashtbl.find by_name e.Span.name with Not_found -> [] in
      Hashtbl.replace by_name e.Span.name (e.Span.dur_us :: durs))
    reader.Span.spans;
  let stages =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_name [])
  in
  if stages = [] then print_endline "no spans recorded (was tracing enabled?)"
  else begin
    Printf.printf "per-stage latency (%d spans):\n" (List.length reader.Span.spans);
    let table =
      Table.create [ "stage"; "count"; "total_ms"; "p50_ms"; "p90_ms"; "p99_ms" ]
    in
    List.iter
      (fun (name, durs) ->
        let sorted = Array.of_list durs in
        Array.sort compare sorted;
        let ms us = Printf.sprintf "%.3f" (us /. 1000.0) in
        Table.add_row table
          [
            name;
            string_of_int (Array.length sorted);
            ms (Array.fold_left ( +. ) 0.0 sorted);
            ms (exact_percentile sorted 0.50);
            ms (exact_percentile sorted 0.90);
            ms (exact_percentile sorted 0.99);
          ])
      stages;
    Table.print table
  end;
  let metric name = List.assoc_opt name reader.Span.metrics in
  (* cache hit rates, from the cache.<name>.{hits,misses,...} sources *)
  let caches =
    List.sort_uniq compare
      (List.filter_map
         (fun (k, _) ->
           match String.split_on_char '.' k with
           | "cache" :: rest when rest <> [] ->
               Some (String.concat "." (List.filteri (fun i _ -> i < List.length rest - 1) rest))
           | _ -> None)
         reader.Span.metrics)
  in
  if caches <> [] then begin
    print_endline "\ncache hit rates:";
    let table = Table.create [ "cache"; "hits"; "misses"; "hit_rate"; "size" ] in
    List.iter
      (fun name ->
        let get suffix =
          Option.value ~default:0.0 (metric ("cache." ^ name ^ "." ^ suffix))
        in
        let hits = get "hits" and misses = get "misses" in
        let rate =
          if hits +. misses > 0.0 then hits /. (hits +. misses) else 0.0
        in
        Table.add_row table
          [
            name;
            Printf.sprintf "%.0f" hits;
            Printf.sprintf "%.0f" misses;
            Printf.sprintf "%.1f%%" (100.0 *. rate);
            Printf.sprintf "%.0f" (get "size");
          ])
      caches;
    Table.print table
  end;
  (* spec-violation histograms from the feedback.violations.* counters:
     the plain `feedback.violations.<spec>` aggregate first, then one
     block per `feedback.violations.<domain>.<spec>` twin *)
  let prefix = "feedback.violations." in
  let tagged =
    List.filter_map
      (fun (k, v) ->
        if String.length k > String.length prefix
           && String.sub k 0 (String.length prefix) = prefix
        then
          let suffix =
            String.sub k (String.length prefix)
              (String.length k - String.length prefix)
          in
          match String.index_opt suffix '.' with
          | None -> Some (None, suffix, v)
          | Some i ->
              Some
                ( Some (String.sub suffix 0 i),
                  String.sub suffix (i + 1) (String.length suffix - i - 1),
                  v )
        else None)
      reader.Span.metrics
  in
  let live dom =
    List.filter_map
      (fun (d, name, v) -> if d = dom then Some (name, v) else None)
      tagged
    |> fun vs -> if List.exists (fun (_, v) -> v > 0.0) vs then vs else []
  in
  let aggregate = live None in
  if aggregate <> [] then begin
    print_endline "\nspec violations (per scoring request):";
    print_violation_bars aggregate
  end;
  let domains =
    List.sort_uniq compare (List.filter_map (fun (d, _, _) -> d) tagged)
  in
  List.iter
    (fun dom ->
      match live (Some dom) with
      | [] -> ()
      | vs ->
          Printf.printf "\nspec violations [%s]:\n" dom;
          print_violation_bars vs)
    domains;
  (* headline latency histograms from the metrics line *)
  let hists = [ "feedback.score"; "sim.rollout"; "dpo.step" ] in
  let present =
    List.filter
      (fun h -> match metric (h ^ ".count") with Some c -> c > 0.0 | None -> false)
      hists
  in
  if present <> [] then begin
    print_endline "\nlatency histograms (seconds):";
    let table =
      Table.create [ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ]
    in
    List.iter
      (fun h ->
        let get suffix =
          Option.value ~default:0.0 (metric (h ^ "." ^ suffix))
        in
        Table.add_row table
          [
            h;
            Printf.sprintf "%.0f" (get "count");
            Printf.sprintf "%.6f" (get "p50");
            Printf.sprintf "%.6f" (get "p90");
            Printf.sprintf "%.6f" (get "p99");
            Printf.sprintf "%.6f" (get "max");
          ])
      present;
    Table.print table
  end

let report_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE.jsonl"
         ~doc:"Telemetry file written by --trace.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Summarize a recorded trace: per-stage latency, cache hit rates \
             and the spec-violation histograms (aggregate and per domain).")
    Term.(const run_report $ path_arg)

(* ---------------- analyze ---------------- *)

module Analysis = Dpoaf_analysis
module Diag = Dpoaf_analysis.Diagnostic

(* The static sanity layer: spec sanity (satisfiability, tautology,
   pairwise redundancy, model-level vacuity) on the pack's rule book,
   lint on every world model, and structural lint + vacuity on
   controllers — either the --step response or the pack's demo
   responses.  Exits non-zero when any error-severity diagnostic fires,
   so `make check` can gate on a sane rule book. *)
let run_analyze domain steps json out pairwise =
  let (module D : Domain.S) = domain in
  let specs = D.specs () in
  let free = Dpoaf_logic.Symbol.of_atoms D.actions in
  let universal = D.universal () in
  let spec_diags = Analysis.Spec_sanity.check ~model:universal ~free ~pairwise specs in
  let scenario_models =
    List.map
      (fun sc ->
        match D.model sc with
        | Some m -> m
        | None -> die "domain %S lists scenario %S without a model" D.name sc)
      D.scenarios
  in
  let model_diags =
    Analysis.Model_lint.lint ~specs ~ignore:free universal
    @ List.concat_map
        (fun m ->
          (* scenario proposition sets are deliberately partial: only the
             universal model must cover the whole rule book *)
          Analysis.Model_lint.lint ~specs ~coverage:false m)
        scenario_models
  in
  let controllers =
    match steps with [] -> D.demo_responses | steps -> [ ("cli", steps) ]
  in
  let controller_diags =
    List.concat_map
      (fun (name, steps) ->
        let controller, _ = D.controller_of_steps ~name steps in
        let satisfied =
          (D.profile_of_controller ~model:universal controller)
            .Domain.satisfied
        in
        Analysis.Controller_lint.lint controller
        @ Analysis.Vacuity.diagnostics ~model:universal ~controller ~specs
            ~satisfied)
      controllers
  in
  let diags = Diag.sort (spec_diags @ model_diags @ controller_diags) in
  let rendered =
    if json then Dpoaf_util.Json.to_string (Diag.report_json diags) ^ "\n"
    else begin
      let buf = Buffer.create 1024 in
      List.iter
        (fun d -> Buffer.add_string buf (Diag.to_string d ^ "\n"))
        diags;
      Buffer.add_string buf
        (Printf.sprintf
           "%s: %d diagnostic(s): %d error(s), %d warning(s), %d info(s) over \
            %d spec(s), %d model(s), %d controller(s)\n"
           D.name (List.length diags)
           (Diag.count Diag.Error diags)
           (Diag.count Diag.Warning diags)
           (Diag.count Diag.Info diags)
           (List.length specs)
           (1 + List.length scenario_models)
           (List.length controllers));
      Buffer.contents buf
    end
  in
  (match out with
  | None -> print_string rendered
  | Some path ->
      write_file path rendered;
      Printf.printf "analysis written to %s\n" path);
  if Diag.has_errors diags then exit 1

let analyze_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the diagnostic report as JSON (the \
                                 schema validated by test/analysis_validate.exe).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the report to $(docv) \
                                                  instead of stdout.")
  in
  let pairwise_arg =
    let doc =
      "Skip the quadratic pairwise-implication sweep over the rule book."
    in
    Term.(const not $ Arg.(value & flag & info [ "no-pairwise" ] ~doc))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static sanity analysis of a pack's rule book, world models and \
             controllers: vacuity, dead states, guard completeness, \
             redundancy.  Exits 1 on any error-severity diagnostic.")
    Term.(const run_analyze $ domain_arg $ steps_arg $ json_arg $ out_arg
          $ pairwise_arg)

(* ---------------- smv ---------------- *)

let run_smv domain steps =
  let (module D : Domain.S) = domain in
  let steps =
    if steps <> [] then steps else snd (demo_response_for domain "")
  in
  let controller, _ = D.controller_of_steps ~name:"exported" steps in
  print_string (Dpoaf_automata.Smv.of_controller ~name:"controller" controller
                  ~props:D.propositions)

let smv_cmd =
  Cmd.v
    (Cmd.info "smv" ~doc:"Export a response's controller to NuSMV syntax.")
    Term.(const run_smv $ domain_arg $ steps_arg)

(* ---------------- serve ---------------- *)

module Serve = Dpoaf_serve

let socket_arg =
  let doc = "Unix-domain socket path for the serving daemon." in
  Arg.(value & opt string "/tmp/dpoaf.sock"
       & info [ "socket" ] ~docv:"PATH" ~doc)

let run_serve socket domains checkpoint jobs max_batch flush_ms queue_capacity
    seed trace metrics_json =
  with_telemetry ~trace ~metrics_json @@ fun () ->
  let domains =
    match domains with
    | [] -> [ Dpoaf_domain.find_exn Dpoaf_domain.default ]
    | ds -> ds
  in
  if checkpoint <> None && List.length domains > 1 then
    die "--checkpoint applies to a single --domain; drop it to pre-train a \
         model per pack";
  let packs =
    List.map
      (fun domain ->
        let corpus = Pipeline.Corpus.build ~domain () in
        let lm =
          match checkpoint with
          | Some path -> (
              try
                let m = Dpoaf_lm.Checkpoint.load path in
                Printf.printf "loaded checkpoint %s\n%!" path;
                m
              with Dpoaf_lm.Checkpoint.Corrupt { path; reason } ->
                Printf.eprintf
                  "error: cannot load checkpoint %s: %s\n\
                   (re-create it with `dpoaf_cli finetune --out %s`)\n%!"
                  path reason path;
                exit 1)
          | None ->
              Printf.printf
                "no --checkpoint given: pre-training a small %s model (seed \
                 %d)...\n\
                 %!"
                (Domain.name domain) seed;
              Pipeline.Corpus.pretrained_model (Rng.create seed) corpus
        in
        (Some lm, corpus))
      domains
  in
  let engine = Serve.Engine.create_multi packs in
  let config = { Serve.Server.jobs; max_batch; flush_ms; queue_capacity } in
  let server =
    Serve.Server.create ~config ~handler:(Serve.Engine.handle engine) ()
  in
  Printf.printf
    "serving %s on %s (jobs=%d, max_batch=%d, flush_ms=%g, queue=%d); SIGINT \
     or SIGTERM drains and stops\n\
     %!"
    (String.concat ", " (Serve.Engine.domains engine))
    socket jobs max_batch flush_ms queue_capacity;
  let stats = Serve.Daemon.run ~socket ~server () in
  Printf.printf
    "daemon stopped: connections=%d requests=%d responses=%d \
     protocol_errors=%d\n"
    stats.Serve.Daemon.connections stats.Serve.Daemon.requests
    stats.Serve.Daemon.responses stats.Serve.Daemon.protocol_errors

let serve_cmd =
  let domains_arg =
    let doc =
      "Serve this domain pack (repeatable; first is the default for \
       requests without a domain field; default: driving)."
    in
    Arg.(value & opt_all domain_conv [] & info [ "domain" ] ~docv:"NAME" ~doc)
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Serve this fine-tuned checkpoint (single-domain only; \
                   default: pre-train a small model per pack at startup).")
  in
  let max_batch_arg =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.max_batch
         & info [ "max-batch" ] ~docv:"N" ~doc:"Size-based batch flush.")
  in
  let flush_ms_arg =
    Arg.(value & opt float Serve.Server.default_config.Serve.Server.flush_ms
         & info [ "flush-ms" ] ~docv:"MS" ~doc:"Time-based batch flush.")
  in
  let queue_arg =
    Arg.(value
         & opt int Serve.Server.default_config.Serve.Server.queue_capacity
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission-queue capacity; beyond it requests are \
                   rejected.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the batched inference-and-verification daemon (line-delimited \
             JSON over a Unix socket), serving one or more domain packs.")
    Term.(const run_serve $ socket_arg $ domains_arg $ checkpoint_arg
          $ jobs_arg $ max_batch_arg $ flush_ms_arg $ queue_arg $ seed_arg
          $ trace_arg $ metrics_json_arg)

(* ---------------- loadgen ---------------- *)

let run_loadgen socket domain rate duration mix deadline_ms seed =
  let generate, verify, score_pair = mix in
  let config =
    {
      Serve.Loadgen.socket;
      rate;
      duration_s = duration;
      mix = { Serve.Loadgen.generate; verify; score_pair };
      deadline_ms;
      domain;
      seed;
    }
  in
  match Serve.Loadgen.run config with
  | report -> Serve.Loadgen.print_report report
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "error: cannot reach daemon at %s: %s\n%!" socket
        (Unix.error_message e);
      exit 1
  | exception Invalid_argument msg ->
      Printf.eprintf "error: %s\n%!" msg;
      exit 1
  | exception Failure msg ->
      Printf.eprintf "error: %s\n%!" msg;
      exit 1

let loadgen_cmd =
  let domain_opt_arg =
    let doc =
      "Synthesize traffic from this pack's tasks and tag every request with \
       it (default: untagged traffic for the server's default pack)."
    in
    Arg.(value & opt (some string) None & info [ "domain" ] ~docv:"NAME" ~doc)
  in
  let rate_arg =
    Arg.(value & opt float 200.0
         & info [ "rate" ] ~docv:"RPS" ~doc:"Offered load, requests/second.")
  in
  let duration_arg =
    Arg.(value & opt float 2.0
         & info [ "duration" ] ~docv:"S" ~doc:"Send window in seconds.")
  in
  let mix_arg =
    Arg.(value & opt (t3 ~sep:',' float float float) (0.3, 0.4, 0.3)
         & info [ "mix" ] ~docv:"G,V,S"
             ~doc:"Relative weights of generate, verify and score_pair \
                   requests.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Attach this deadline to every request.")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Replay synthetic traffic against a running daemon and report \
             throughput and latency percentiles.")
    Term.(const run_loadgen $ socket_arg $ domain_opt_arg $ rate_arg
          $ duration_arg $ mix_arg $ deadline_arg $ seed_arg)

(* ---------------- main ---------------- *)

let () =
  let info =
    Cmd.info "dpoaf_cli" ~version:"1.0"
      ~doc:"Fine-tuning language models using formal methods feedback (DPO-AF)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ domains_cmd; tasks_cmd; specs_cmd; verify_cmd; synthesize_cmd;
            finetune_cmd; simulate_cmd; report_cmd; analyze_cmd; smv_cmd;
            serve_cmd; loadgen_cmd ]))
