(* Command-line interface to the DPO-AF pipeline.

   dpoaf_cli domains                      list registered domain packs
   dpoaf_cli tasks [--domain D]           list a pack's control tasks
   dpoaf_cli specs [--domain D]           list a pack's LTL rule book
   dpoaf_cli verify --step "..." ...      verify a response's steps
   dpoaf_cli synthesize --task ID         sample + rank responses
   dpoaf_cli refine --step "..." ...      counterexample-guided repair
   dpoaf_cli finetune --out model.ckpt    run the full DPO-AF pipeline
   dpoaf_cli simulate --task ID           empirical P_Φ in the simulator
   dpoaf_cli report trace.jsonl           summarize a recorded trace
   dpoaf_cli smv --step "..." ...         export a controller to NuSMV
   dpoaf_cli serve --socket PATH          batched serving daemon (NDJSON)
   dpoaf_cli loadgen --rate N             replay synthetic traffic at it
   dpoaf_cli stats [--watch N]            live daemon metrics (json|prom)
   dpoaf_cli health                       daemon queue/drain liveness
   dpoaf_cli report --journal FILE        summarize a serving journal

   Every pipeline-facing subcommand takes --domain NAME (default:
   driving, the paper's use case); unknown names are rejected with the
   registered list, never silently defaulted. *)

open Cmdliner
module Domain = Dpoaf_domain.Domain
module MC = Dpoaf_automata.Model_checker
module Pipeline = Dpoaf_pipeline
module Rng = Dpoaf_util.Rng
module Table = Dpoaf_util.Table
module Metrics = Dpoaf_exec.Metrics
module Span = Dpoaf_exec.Trace
module Refine = Dpoaf_refine

(* ---------------- shared arguments ---------------- *)

let die fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("error: " ^ msg);
      exit 1)
    fmt

(* strict: an unknown domain name is a usage error listing the
   registered packs, never a silent fallback to driving *)
let domain_conv =
  let parse s =
    match Dpoaf_domain.find s with
    | Some d -> Ok d
    | None ->
        Error
          (`Msg
             (Printf.sprintf "unknown domain %S; expected one of: %s" s
                (String.concat ", " (Dpoaf_domain.names ()))))
  in
  let print ppf d = Format.pp_print_string ppf (Domain.name d) in
  Arg.conv (parse, print)

let domain_arg =
  let doc =
    "Domain pack to operate in (see `dpoaf_cli domains`). Unknown names \
     are rejected."
  in
  Arg.(
    value
    & opt domain_conv (Dpoaf_domain.find_exn Dpoaf_domain.default)
    & info [ "domain" ] ~docv:"NAME" ~doc)

(* scenario validity depends on the chosen pack, so the name is resolved
   (strictly) at run time via [Domain.model_of_scenario] *)
let scenario_arg =
  let doc =
    "World model to verify against: one of the pack's scenarios (see \
     `dpoaf_cli tasks`) or universal (default). Unknown names are \
     rejected."
  in
  Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"MODEL" ~doc)

let resolve_model domain scenario =
  match Domain.model_of_scenario domain scenario with
  | Ok model -> model
  | Error msg -> die "%s" msg

let steps_arg =
  let doc = "One instruction step (repeatable, in order)." in
  Arg.(value & opt_all string [] & info [ "step"; "s" ] ~docv:"TEXT" ~doc)

let task_arg =
  let doc =
    "Task id (see `dpoaf_cli tasks`; default: the pack's first task)."
  in
  Arg.(value & opt (some string) None & info [ "task" ] ~docv:"ID" ~doc)

let resolve_task domain = function
  | Some id -> (
      match Domain.find_task domain id with
      | Some t -> t
      | None ->
          die "unknown task %S in domain %S (valid: %s)" id
            (Domain.name domain)
            (String.concat ", "
               (List.map (fun t -> t.Domain.id) (Domain.tasks domain))))
  | None -> (
      match Domain.tasks domain with
      | t :: _ -> t
      | [] -> die "domain %S has no tasks" (Domain.name domain))

(* the worked example to fall back on when no --step is given: the
   post-fine-tuning demo response whose name shares the longest prefix
   with the task id (e.g. left_turn_ll -> left_turn_after_ft) *)
let demo_response_for domain task_id =
  let (module D : Domain.S) = domain in
  let after_ft (name, _) =
    let suffix = "_after_ft" in
    String.length name >= String.length suffix
    && String.sub name
         (String.length name - String.length suffix)
         (String.length suffix)
       = suffix
  in
  let common_prefix a b =
    let n = min (String.length a) (String.length b) in
    let rec go i = if i < n && a.[i] = b.[i] then go (i + 1) else i in
    go 0
  in
  let candidates =
    match List.filter after_ft D.demo_responses with
    | [] -> D.demo_responses
    | cs -> cs
  in
  match candidates with
  | [] -> die "domain %S has no demo responses" D.name
  | first :: _ ->
      List.fold_left
        (fun (bn, bs) (n, s) ->
          if common_prefix n task_id > common_prefix bn task_id then (n, s)
          else (bn, bs))
        first candidates

let seed_arg =
  Arg.(value & opt int 2024 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")

(* strict positive-integer flag values: --jobs, --watch, --journal-max-kb *)
let pos_int_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ -> Error (`Msg "expected a positive integer")
    | None -> Error (`Msg "expected an integer")
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  let doc =
    "Worker domains for parallel scoring, rollouts and multi-seed training. \
     Results are identical for every value (the scheduler preserves order \
     and RNG streams); 1 disables parallelism."
  in
  Arg.(value & opt pos_int_conv 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let set_jobs n = Dpoaf_exec.Pool.set_default_jobs n

let trace_arg =
  let doc =
    "Record spans and metrics to $(docv) (JSONL, readable by `dpoaf_cli \
     report`); a Chrome/Perfetto trace is written alongside as \
     $(docv).perfetto.json."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_json_arg =
  let doc = "Write the metrics summary (counters, timers, histogram \
             percentiles) as JSON to $(docv)." in
  Arg.(value & opt (some string) None
       & info [ "metrics-json" ] ~docv:"FILE" ~doc)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  output_string oc contents

(* Enable tracing up front when requested, run the command body, then
   flush the trace (JSONL + sibling Perfetto file) and metrics summary. *)
let with_telemetry ~trace ~metrics_json f =
  if trace <> None then Span.enable ();
  let finish () =
    (match trace with
    | None -> ()
    | Some path ->
        Span.write_jsonl path;
        Span.write_chrome (path ^ ".perfetto.json");
        Printf.printf "trace written to %s (and %s.perfetto.json)\n" path path);
    match metrics_json with
    | None -> ()
    | Some path ->
        write_file path (Metrics.to_json () ^ "\n");
        Printf.printf "metrics written to %s\n" path
  in
  Fun.protect ~finally:finish f

(* ---------------- domains ---------------- *)

let run_domains quiet =
  if quiet then List.iter print_endline (Dpoaf_domain.names ())
  else begin
    let table =
      Table.create [ "name"; "tasks"; "specs"; "scenarios"; "actions" ]
    in
    List.iter
      (fun domain ->
        let (module D : Domain.S) = domain in
        Table.add_row table
          [
            D.name;
            string_of_int (List.length D.tasks);
            string_of_int (Domain.spec_count domain);
            string_of_int (List.length D.scenarios);
            string_of_int (List.length D.actions);
          ])
      (Dpoaf_domain.all ());
    Table.print table
  end

let domains_cmd =
  let quiet_arg =
    Arg.(value & flag
         & info [ "quiet"; "q" ] ~doc:"Print one pack name per line.")
  in
  Cmd.v
    (Cmd.info "domains" ~doc:"List the registered domain packs.")
    Term.(const run_domains $ quiet_arg)

(* ---------------- tasks ---------------- *)

let run_tasks domain =
  let table = Table.create [ "id"; "prompt"; "scenario"; "split" ] in
  List.iter
    (fun t ->
      Table.add_row table
        [
          t.Domain.id;
          t.Domain.prompt;
          t.Domain.scenario;
          (match t.Domain.split with
          | Domain.Training -> "training"
          | Domain.Validation -> "validation");
        ])
    (Domain.tasks domain);
  Table.print table

let tasks_cmd =
  Cmd.v (Cmd.info "tasks" ~doc:"List a domain pack's control tasks.")
    Term.(const run_tasks $ domain_arg)

(* ---------------- specs ---------------- *)

let run_specs domain =
  let (module D : Domain.S) = domain in
  List.iter
    (fun (name, phi) ->
      Printf.printf "%-8s %s\n" name (Dpoaf_logic.Ltl.to_string phi))
    (D.specs ())

let specs_cmd =
  Cmd.v
    (Cmd.info "specs" ~doc:"List a domain pack's LTL rule-book specifications.")
    Term.(const run_specs $ domain_arg)

(* ---------------- verify ---------------- *)

let run_verify domain steps scenario =
  let (module D : Domain.S) = domain in
  let steps =
    if steps <> [] then steps
    else begin
      let name, demo =
        match D.demo_responses with
        | first :: _ -> first
        | [] -> die "domain %S has no demo responses" D.name
      in
      Printf.printf "(no --step given: verifying the %s demo response %S)\n"
        D.name name;
      demo
    end
  in
  let controller, stats = D.controller_of_steps ~name:"cli" steps in
  Printf.printf "parsed %d/%d steps (%d degraded, %d dropped)\n"
    (stats.Dpoaf_lang.Step_parser.total - stats.Dpoaf_lang.Step_parser.failed)
    stats.Dpoaf_lang.Step_parser.total stats.Dpoaf_lang.Step_parser.degraded
    stats.Dpoaf_lang.Step_parser.failed;
  let model = resolve_model domain scenario in
  let verdicts = MC.verify_all ~model ~controller ~specs:(D.specs ()) in
  List.iter
    (fun (name, phi, verdict) ->
      Printf.printf "%-8s %-60s %s\n" name
        (Dpoaf_logic.Ltl.to_string phi)
        (match verdict with MC.Holds -> "holds" | MC.Fails _ -> "FAILS"))
    verdicts;
  let sat = List.length (List.filter (fun (_, _, v) -> MC.is_holds v) verdicts) in
  Printf.printf "satisfied: %d/%d\n" sat (List.length verdicts);
  List.iter
    (fun (name, _, verdict) ->
      match verdict with
      | MC.Holds -> ()
      | MC.Fails cex ->
          Printf.printf "\ncounterexample for %s:\n" name;
          List.iter (Printf.printf "  %s\n") cex.MC.prefix_descr;
          print_endline "  -- cycle --";
          List.iter (Printf.printf "  %s\n") cex.MC.cycle_descr)
    (List.filteri (fun i _ -> i < 1) (List.filter (fun (_, _, v) -> not (MC.is_holds v)) verdicts))

let verify_cmd =
  Cmd.v
    (Cmd.info "verify" ~doc:"Verify a response's steps against the rule book.")
    Term.(const run_verify $ domain_arg $ steps_arg $ scenario_arg)

(* ---------------- synthesize ---------------- *)

let run_synthesize domain task_id n seed =
  let task = resolve_task domain task_id in
  let corpus = Pipeline.Corpus.build ~domain () in
  let rng = Rng.create seed in
  Printf.printf "pre-training the %s language model (seed %d)...\n%!"
    (Domain.name domain) seed;
  let model = Pipeline.Corpus.pretrained_model rng corpus in
  let feedback = Pipeline.Feedback.create ~domain () in
  let setup = Pipeline.Corpus.setup corpus task in
  let snap = Dpoaf_lm.Sampler.snapshot model in
  Printf.printf "sampling %d responses for %S:\n\n" n task.Domain.prompt;
  List.iter
    (fun i ->
      let tokens =
        Dpoaf_lm.Sampler.sample snap rng ~prompt:setup.Pipeline.Corpus.prompt
          ~grammar:setup.Pipeline.Corpus.grammar
          ~min_clauses:setup.Pipeline.Corpus.min_clauses
          ~max_clauses:setup.Pipeline.Corpus.max_clauses ()
      in
      let score = Pipeline.Feedback.score_tokens feedback ~corpus setup tokens in
      Printf.printf "response %d — satisfies %d/%d specifications:\n" (i + 1)
        score (Domain.spec_count domain);
      List.iteri
        (fun j s -> Printf.printf "  %d. %s\n" (j + 1) s)
        (Pipeline.Corpus.steps_of_tokens corpus tokens);
      print_newline ())
    (List.init n Fun.id)

let synthesize_cmd =
  let n_arg =
    Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of responses.")
  in
  Cmd.v
    (Cmd.info "synthesize"
       ~doc:"Sample responses from the pre-trained model and rank them by verification.")
    Term.(const run_synthesize $ domain_arg $ task_arg $ n_arg $ seed_arg)

(* ---------------- refine ---------------- *)

(* Counterexample-guided repair from the command line.  With --step, the
   given response is refined for --task; without it, a seeded pool of
   repairable defects (careless final steps that actually violate specs)
   is built per task and every response is refined — the offline twin of
   the serve-level refine verb, and what tools/refine_check.sh drives. *)
let run_refine domain task_id steps seed rounds attempts scenario explain
    store_path =
  let corpus = Pipeline.Corpus.build ~domain () in
  let rng = Rng.create seed in
  Printf.printf "pre-training the %s language model (seed %d)...\n%!"
    (Domain.name domain) seed;
  let model = Pipeline.Corpus.pretrained_model rng corpus in
  let snapshot = Dpoaf_lm.Sampler.snapshot model in
  let world = resolve_model domain scenario in
  let budget =
    { Refine.Refine.max_rounds = rounds; attempts; round_deadline_ms = None }
  in
  let store = Option.map Refine.Pref_store.create store_path in
  let cache =
    Refine.Refine.explain_cache
      ~name:(Printf.sprintf "refine.explain.%s" (Domain.name domain))
  in
  let vocab = corpus.Pipeline.Corpus.vocab in
  let refine_one (task : Domain.task) response =
    let setup = Pipeline.Corpus.setup corpus task in
    let sample =
      Refine.Refine.conditioned_sampler ~snapshot
        ~encode:(Dpoaf_lm.Vocab.encode vocab)
        ~decode:(Pipeline.Corpus.steps_of_tokens corpus)
        ~prompt:setup.Pipeline.Corpus.prompt
        ~grammar:setup.Pipeline.Corpus.grammar
        ~min_clauses:setup.Pipeline.Corpus.min_clauses
        ~max_clauses:setup.Pipeline.Corpus.max_clauses
        ~sep:(Dpoaf_lm.Vocab.sep vocab) ~seed ()
    in
    let refiner = Refine.Refine.create ~domain ~model:world ~cache ~sample () in
    let outcome = Refine.Refine.run ~budget refiner response in
    Printf.printf "task %s: %d violated initially\n" task.Domain.id
      (List.length outcome.Refine.Refine.original_profile.Refine.Refine.violated);
    List.iter
      (fun (r : Refine.Refine.round) ->
        Printf.printf "  round %d: violated=%d %s (margin %+d)\n"
          r.Refine.Refine.index
          (List.length
             r.Refine.Refine.candidate_profile.Refine.Refine.violated)
          (if r.Refine.Refine.accepted then "accepted" else "rejected")
          r.Refine.Refine.margin;
        if explain then
          List.iter
            (fun (spec, text) -> Printf.printf "    [%s] %s\n" spec text)
            r.Refine.Refine.feedback)
      outcome.Refine.Refine.rounds;
    Printf.printf "status: %s (%d -> %d violated, %d rounds)\n"
      (Refine.Refine.status_name outcome.Refine.Refine.status)
      (List.length outcome.Refine.Refine.original_profile.Refine.Refine.violated)
      (List.length outcome.Refine.Refine.final_profile.Refine.Refine.violated)
      (List.length outcome.Refine.Refine.rounds);
    if outcome.Refine.Refine.final <> response then begin
      print_endline "repaired steps:";
      List.iteri
        (fun i s -> Printf.printf "  %d. %s\n" (i + 1) s)
        outcome.Refine.Refine.final
    end;
    print_newline ();
    (match store with
    | None -> ()
    | Some st ->
        List.iter
          (fun (r : Refine.Refine.round) ->
            if r.Refine.Refine.accepted then
              Refine.Pref_store.append st
                {
                  Dpoaf_dpo.Pref_data.h_task = task.Domain.id;
                  h_domain = Domain.name domain;
                  h_round = r.Refine.Refine.index;
                  h_seed = seed;
                  h_chosen_steps = r.Refine.Refine.candidate;
                  h_rejected_steps = response;
                  h_chosen_score =
                    List.length
                      r.Refine.Refine.candidate_profile.Refine.Refine.satisfied;
                  h_rejected_score =
                    List.length
                      outcome.Refine.Refine.original_profile
                        .Refine.Refine.satisfied;
                  h_chosen_satisfied =
                    r.Refine.Refine.candidate_profile.Refine.Refine.satisfied;
                  h_rejected_satisfied =
                    outcome.Refine.Refine.original_profile
                      .Refine.Refine.satisfied;
                  h_chosen_vacuous =
                    r.Refine.Refine.candidate_profile.Refine.Refine.vacuous;
                  h_explanations = r.Refine.Refine.feedback;
                })
          outcome.Refine.Refine.rounds);
    outcome
  in
  (match steps with
  | _ :: _ ->
      let task = resolve_task domain task_id in
      ignore (refine_one task steps)
  | [] ->
      let pool = Refine.Refine.defect_pool ~model:world domain ~seed ~per_task:2 in
      if pool = [] then die "domain %S yields no repairable defects" (Domain.name domain);
      Printf.printf "refining %d seeded defective responses...\n\n"
        (List.length pool);
      let outcomes = List.map (fun (task, response) -> refine_one task response) pool in
      let count p = List.length (List.filter p outcomes) in
      let clean =
        count (fun o -> o.Refine.Refine.status = Refine.Refine.Clean)
      in
      let improved =
        count (fun o -> o.Refine.Refine.status <> Refine.Refine.Unchanged)
      in
      Printf.printf
        "refine summary: improved %d/%d defective responses (%d fully clean) \
         within %d rounds\n"
        improved (List.length pool) clean rounds);
  match store with
  | None -> ()
  | Some st ->
      Refine.Pref_store.close st;
      Printf.printf "preference store written to %s\n"
        (Refine.Pref_store.path st)

let refine_cmd =
  let rounds_arg =
    Arg.(value & opt pos_int_conv Refine.Refine.default_budget.Refine.Refine.max_rounds
         & info [ "rounds" ] ~docv:"N" ~doc:"Maximum refinement rounds.")
  in
  let attempts_arg =
    Arg.(value & opt pos_int_conv Refine.Refine.default_budget.Refine.Refine.attempts
         & info [ "attempts" ] ~docv:"N"
             ~doc:"Candidates re-sampled per round.")
  in
  let explain_flag =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Print the counterexample feedback sentences that \
                   conditioned each round.")
  in
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"FILE"
             ~doc:"Append every accepted repair as a harvested preference \
                   pair (dpoaf-prefstore/1 JSONL) to $(docv).")
  in
  Cmd.v
    (Cmd.info "refine"
       ~doc:"Repair a defective response by feeding counterexample \
             explanations back into re-sampling; without --step, refine a \
             seeded pool of repairable defects per task.")
    Term.(const run_refine $ domain_arg $ task_arg $ steps_arg $ seed_arg
          $ rounds_arg $ attempts_arg $ scenario_arg $ explain_flag
          $ store_arg)

(* ---------------- finetune ---------------- *)

let run_finetune domain epochs seeds out seed jobs trace metrics_json =
  set_jobs jobs;
  with_telemetry ~trace ~metrics_json @@ fun () ->
  let corpus = Pipeline.Corpus.build ~domain () in
  let rng = Rng.create seed in
  Printf.printf "pre-training the %s language model...\n%!"
    (Domain.name domain);
  let reference = Pipeline.Corpus.pretrained_model rng corpus in
  let feedback = Pipeline.Feedback.create ~domain () in
  let config =
    {
      Pipeline.Dpoaf.default_config with
      trainer =
        {
          Dpoaf_dpo.Trainer.default_config with
          epochs;
          checkpoint_every = max 1 (epochs / 10);
          lr = 2e-3;
        };
    }
  in
  Printf.printf "running DPO-AF (%d epochs, %d seed(s))...\n%!" epochs (List.length seeds);
  let sink, close_sink =
    match out with
    | None -> (None, fun () -> ())
    | Some path ->
        let steps_path = path ^ ".steps.csv" in
        let sink, close = Dpoaf_dpo.Trainer.file_sink steps_path in
        Printf.printf "streaming per-step training records to %s\n%!" steps_path;
        (Some sink, close)
  in
  let result =
    Fun.protect ~finally:close_sink @@ fun () ->
    Pipeline.Dpoaf.run ~config ?sink ~corpus ~feedback ~reference ~seeds rng
  in
  Printf.printf "mined %d preference pairs\n" result.Pipeline.Dpoaf.pairs_used;
  let stats = Pipeline.Feedback.cache_stats feedback in
  Printf.printf "verifier cache: %d hits / %d misses (%d entries)\n"
    stats.Dpoaf_exec.Cache.hits stats.Dpoaf_exec.Cache.misses
    stats.Dpoaf_exec.Cache.size;
  let total = Domain.spec_count domain in
  List.iter
    (fun c ->
      Printf.printf "epoch %3d: training %.2f/%d  validation %.2f/%d\n"
        c.Pipeline.Dpoaf.epoch c.Pipeline.Dpoaf.training_score total
        c.Pipeline.Dpoaf.validation_score total)
    result.Pipeline.Dpoaf.curve;
  (match (result.Pipeline.Dpoaf.runs, out) with
  | run :: _, Some path ->
      Dpoaf_lm.Checkpoint.save run.Dpoaf_dpo.Trainer.final path;
      Printf.printf "saved fine-tuned model to %s\n" path
  | _ -> ())

let finetune_cmd =
  let epochs_arg =
    Arg.(value & opt int 100 & info [ "epochs" ] ~docv:"N" ~doc:"DPO epochs.")
  in
  let seeds_arg =
    Arg.(value & opt (list int) [ 1 ] & info [ "seeds" ] ~docv:"S1,S2" ~doc:"Seeds.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
         ~doc:"Save the fine-tuned checkpoint.")
  in
  Cmd.v
    (Cmd.info "finetune" ~doc:"Run the full DPO-AF pipeline.")
    Term.(const run_finetune $ domain_arg $ epochs_arg $ seeds_arg $ out_arg
          $ seed_arg $ jobs_arg $ trace_arg $ metrics_json_arg)

(* ---------------- simulate ---------------- *)

let run_simulate domain task_id steps_override rollouts steps miss false_rate
    seed jobs trace metrics_json =
  set_jobs jobs;
  with_telemetry ~trace ~metrics_json @@ fun () ->
  let (module D : Domain.S) = domain in
  let task = resolve_task domain task_id in
  let model = resolve_model domain (Some task.Domain.scenario) in
  let response =
    if steps_override <> [] then steps_override
    else snd (demo_response_for domain task.Domain.id)
  in
  let controller, _ = D.controller_of_steps ~name:task.Domain.id response in
  let config =
    { Dpoaf_sim.Empirical.rollouts; steps;
      noise = { Dpoaf_sim.World.miss_rate = miss; false_rate }; seed }
  in
  let rates =
    Dpoaf_sim.Empirical.evaluate ~domain:D.name ~model ~controller
      ~specs:(D.specs ()) config
  in
  Printf.printf "empirical P_Φ over %d rollouts × %d steps in %s:\n" rollouts
    steps task.Domain.scenario;
  List.iter (fun (name, rate) -> Printf.printf "  %-8s %.3f\n" name rate) rates

let simulate_cmd =
  let rollouts_arg =
    Arg.(value & opt int 300 & info [ "rollouts" ] ~docv:"N" ~doc:"Rollouts.")
  in
  let length_arg =
    Arg.(value & opt int 40 & info [ "length" ] ~docv:"N" ~doc:"Steps per rollout.")
  in
  let miss_arg =
    Arg.(value & opt float 0.02 & info [ "miss" ] ~docv:"P" ~doc:"Missed-detection rate.")
  in
  let false_arg =
    Arg.(value & opt float 0.01 & info [ "false" ] ~docv:"P" ~doc:"False-detection rate.")
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Empirical evaluation in the simulated system.")
    Term.(const run_simulate $ domain_arg $ task_arg $ steps_arg $ rollouts_arg
          $ length_arg $ miss_arg $ false_arg $ seed_arg $ jobs_arg $ trace_arg
          $ metrics_json_arg)

(* ---------------- report ---------------- *)

let exact_percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* render one `name count bar` block, numerically ordered on the phi_N
   suffix so phi_2 sorts before phi_10 *)
let print_violation_bars violations =
  let keyed =
    List.sort compare
      (List.map
         (fun (name, v) ->
           let num =
             match String.split_on_char '_' name with
             | [ _; n ] -> ( try int_of_string n with _ -> max_int)
             | _ -> max_int
           in
           (num, name, v))
         violations)
  in
  let peak = List.fold_left (fun acc (_, _, v) -> max acc v) 1.0 keyed in
  List.iter
    (fun (_, name, v) ->
      let bar = int_of_float (40.0 *. v /. peak) in
      Printf.printf "  %-8s %8.0f %s\n" name v (String.make bar '#'))
    keyed

let run_report path =
  let reader = Span.read_jsonl path in
  (* per-stage latency: spans grouped by name, exact percentiles over the
     recorded durations *)
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (e : Span.event) ->
      let durs = try Hashtbl.find by_name e.Span.name with Not_found -> [] in
      Hashtbl.replace by_name e.Span.name (e.Span.dur_us :: durs))
    reader.Span.spans;
  let stages =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_name [])
  in
  if stages = [] then print_endline "no spans recorded (was tracing enabled?)"
  else begin
    Printf.printf "per-stage latency (%d spans):\n" (List.length reader.Span.spans);
    let table =
      Table.create [ "stage"; "count"; "total_ms"; "p50_ms"; "p90_ms"; "p99_ms" ]
    in
    List.iter
      (fun (name, durs) ->
        let sorted = Array.of_list durs in
        Array.sort compare sorted;
        let ms us = Printf.sprintf "%.3f" (us /. 1000.0) in
        Table.add_row table
          [
            name;
            string_of_int (Array.length sorted);
            ms (Array.fold_left ( +. ) 0.0 sorted);
            ms (exact_percentile sorted 0.50);
            ms (exact_percentile sorted 0.90);
            ms (exact_percentile sorted 0.99);
          ])
      stages;
    Table.print table
  end;
  let metric name = List.assoc_opt name reader.Span.metrics in
  (* cache hit rates, from the cache.<name>.{hits,misses,...} sources *)
  let caches =
    List.sort_uniq compare
      (List.filter_map
         (fun (k, _) ->
           match String.split_on_char '.' k with
           | "cache" :: rest when rest <> [] ->
               Some (String.concat "." (List.filteri (fun i _ -> i < List.length rest - 1) rest))
           | _ -> None)
         reader.Span.metrics)
  in
  if caches <> [] then begin
    print_endline "\ncache hit rates:";
    let table = Table.create [ "cache"; "hits"; "misses"; "hit_rate"; "size" ] in
    List.iter
      (fun name ->
        let get suffix =
          Option.value ~default:0.0 (metric ("cache." ^ name ^ "." ^ suffix))
        in
        let hits = get "hits" and misses = get "misses" in
        let rate =
          if hits +. misses > 0.0 then hits /. (hits +. misses) else 0.0
        in
        Table.add_row table
          [
            name;
            Printf.sprintf "%.0f" hits;
            Printf.sprintf "%.0f" misses;
            Printf.sprintf "%.1f%%" (100.0 *. rate);
            Printf.sprintf "%.0f" (get "size");
          ])
      caches;
    Table.print table
  end;
  (* spec-violation histograms from the feedback.violations.* counters:
     the plain `feedback.violations.<spec>` aggregate first, then one
     block per `feedback.violations.<domain>.<spec>` twin *)
  let prefix = "feedback.violations." in
  let tagged =
    List.filter_map
      (fun (k, v) ->
        if String.length k > String.length prefix
           && String.sub k 0 (String.length prefix) = prefix
        then
          let suffix =
            String.sub k (String.length prefix)
              (String.length k - String.length prefix)
          in
          match String.index_opt suffix '.' with
          | None -> Some (None, suffix, v)
          | Some i ->
              Some
                ( Some (String.sub suffix 0 i),
                  String.sub suffix (i + 1) (String.length suffix - i - 1),
                  v )
        else None)
      reader.Span.metrics
  in
  let live dom =
    List.filter_map
      (fun (d, name, v) -> if d = dom then Some (name, v) else None)
      tagged
    |> fun vs -> if List.exists (fun (_, v) -> v > 0.0) vs then vs else []
  in
  let aggregate = live None in
  if aggregate <> [] then begin
    print_endline "\nspec violations (per scoring request):";
    print_violation_bars aggregate
  end;
  let domains =
    List.sort_uniq compare (List.filter_map (fun (d, _, _) -> d) tagged)
  in
  List.iter
    (fun dom ->
      match live (Some dom) with
      | [] -> ()
      | vs ->
          Printf.printf "\nspec violations [%s]:\n" dom;
          print_violation_bars vs)
    domains;
  (* headline latency histograms from the metrics line *)
  let hists = [ "feedback.score"; "sim.rollout"; "dpo.step" ] in
  let present =
    List.filter
      (fun h -> match metric (h ^ ".count") with Some c -> c > 0.0 | None -> false)
      hists
  in
  if present <> [] then begin
    print_endline "\nlatency histograms (seconds):";
    let table =
      Table.create [ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ]
    in
    List.iter
      (fun h ->
        let get suffix =
          Option.value ~default:0.0 (metric (h ^ "." ^ suffix))
        in
        Table.add_row table
          [
            h;
            Printf.sprintf "%.0f" (get "count");
            Printf.sprintf "%.6f" (get "p50");
            Printf.sprintf "%.6f" (get "p90");
            Printf.sprintf "%.6f" (get "p99");
            Printf.sprintf "%.6f" (get "max");
          ])
      present;
    Table.print table
  end

(* Summarize an event journal written by `serve --journal`.  Every line
   must parse and carry "ts"/"ev" — a malformed line is a hard error (exit
   1), which is what lets tools/obs_check.sh use this command as a journal
   validity check. *)
let run_journal_report path =
  let module Json = Dpoaf_util.Json in
  let ic = try open_in path with Sys_error msg -> die "%s" msg in
  let events = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then
         match Json.parse line with
         | Error msg -> die "%s:%d: malformed journal line: %s" path !lineno msg
         | Ok j -> (
             let ts = Option.bind (Json.member "ts" j) Json.to_float in
             let ev = Option.bind (Json.member "ev" j) Json.to_str in
             match (ts, ev) with
             | Some ts, Some ev -> events := (ts, ev, j) :: !events
             | _ ->
                 die "%s:%d: journal line missing \"ts\" or \"ev\"" path
                   !lineno)
     done
   with End_of_file -> ());
  close_in ic;
  let events = List.rev !events in
  match events with
  | [] -> Printf.printf "journal %s: empty\n" path
  | (t0, _, _) :: _ ->
      let tn, _, _ = List.nth events (List.length events - 1) in
      Printf.printf "journal %s: %d events over %.2fs\n" path
        (List.length events) (tn -. t0);
      let counts = Hashtbl.create 16 in
      List.iter
        (fun (_, ev, _) ->
          Hashtbl.replace counts ev
            (1 + try Hashtbl.find counts ev with Not_found -> 0))
        events;
      let table = Table.create [ "event"; "count" ] in
      List.iter
        (fun (ev, c) -> Table.add_row table [ ev; string_of_int c ])
        (List.sort compare
           (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []));
      Table.print table;
      (* request latency, from the serve.request events' timing fields *)
      let field j name = Option.bind (Json.member name j) Json.to_float in
      let requests =
        List.filter_map
          (fun (_, ev, j) ->
            if ev = "serve.request" then
              match (field j "queue_wait_us", field j "execute_us") with
              | Some w, Some e -> Some (w, e)
              | _ -> None
            else None)
          events
      in
      if requests <> [] then begin
        Printf.printf "\nrequest timing (%d requests):\n"
          (List.length requests);
        let table =
          Table.create [ "phase"; "p50_ms"; "p90_ms"; "p99_ms"; "max_ms" ]
        in
        let row name xs =
          let sorted = Array.of_list xs in
          Array.sort compare sorted;
          let ms us = Printf.sprintf "%.3f" (us /. 1000.0) in
          Table.add_row table
            [
              name;
              ms (exact_percentile sorted 0.50);
              ms (exact_percentile sorted 0.90);
              ms (exact_percentile sorted 0.99);
              ms (Array.fold_left Float.max 0.0 sorted);
            ]
        in
        row "queue_wait" (List.map fst requests);
        row "execute" (List.map snd requests);
        Table.print table
      end;
      (* the repair loop, from serve.refine_round events *)
      let refine_rounds =
        List.filter_map
          (fun (_, ev, j) ->
            if ev = "serve.refine_round" then Some j else None)
          events
      in
      if refine_rounds <> [] then begin
        let accepted =
          List.length
            (List.filter
               (fun j -> Json.member "accepted" j = Some (Json.Bool true))
               refine_rounds)
        in
        let per_request = Hashtbl.create 16 in
        List.iter
          (fun j ->
            match Option.bind (Json.member "id" j) Json.to_str with
            | Some id ->
                Hashtbl.replace per_request id
                  (1 + try Hashtbl.find per_request id with Not_found -> 0)
            | None -> ())
          refine_rounds;
        Printf.printf "\nrefine rounds: %d over %d requests (%d accepted)\n"
          (List.length refine_rounds)
          (Hashtbl.length per_request)
          accepted;
        let table = Table.create [ "metric"; "p50"; "p90"; "p99"; "max" ] in
        let row name f xs =
          let sorted = Array.of_list xs in
          Array.sort compare sorted;
          Table.add_row table
            [
              name;
              f (exact_percentile sorted 0.50);
              f (exact_percentile sorted 0.90);
              f (exact_percentile sorted 0.99);
              f (Array.fold_left Float.max 0.0 sorted);
            ]
        in
        row "rounds/request"
          (Printf.sprintf "%.0f")
          (Hashtbl.fold (fun _ v acc -> float_of_int v :: acc) per_request []);
        row "round_ms"
          (Printf.sprintf "%.3f")
          (List.filter_map
             (fun j -> Option.bind (Json.member "round_ms" j) Json.to_float)
             refine_rounds);
        Table.print table
      end

(* Validate and summarize a harvested preference store.  Any malformed
   record is a hard error (exit 1) — tools/refine_check.sh relies on this
   command as the store validity check. *)
let run_pref_store_report path =
  let module Pref_data = Dpoaf_dpo.Pref_data in
  match Pref_data.load_harvested path with
  | Error msg -> die "%s" msg
  | Ok [] -> Printf.printf "preference store %s: empty (valid)\n" path
  | Ok records ->
      Printf.printf "preference store %s: %d harvested pairs (%s)\n" path
        (List.length records) Pref_data.store_schema;
      let groups = Hashtbl.create 8 in
      List.iter
        (fun (r : Pref_data.harvested) ->
          let key = (r.Pref_data.h_domain, r.Pref_data.h_task) in
          let n, gain, rounds =
            try Hashtbl.find groups key with Not_found -> (0, 0, 0)
          in
          Hashtbl.replace groups key
            ( n + 1,
              gain + r.Pref_data.h_chosen_score - r.Pref_data.h_rejected_score,
              rounds + r.Pref_data.h_round ))
        records;
      let table =
        Table.create [ "domain"; "task"; "pairs"; "avg gain"; "avg round" ]
      in
      List.iter
        (fun ((dom, task), (n, gain, rounds)) ->
          Table.add_row table
            [
              dom;
              task;
              string_of_int n;
              Printf.sprintf "%.2f" (float_of_int gain /. float_of_int n);
              Printf.sprintf "%.2f" (float_of_int rounds /. float_of_int n);
            ])
        (List.sort compare
           (Hashtbl.fold (fun k v acc -> (k, v) :: acc) groups []));
      Table.print table;
      let explained =
        List.length
          (List.filter
             (fun (r : Pref_data.harvested) -> r.Pref_data.h_explanations <> [])
             records)
      in
      Printf.printf "%d/%d pairs carry counterexample feedback\n" explained
        (List.length records)

let report_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Telemetry file written by --trace, or (with $(b,--journal)) \
               an event journal written by `serve --journal`, or (with \
               $(b,--pref-store)) a harvested preference store written by \
               `serve --pref-store`.")
  in
  let journal_arg =
    Arg.(value & flag
         & info [ "journal" ]
             ~doc:"Treat $(i,FILE) as a serving event journal (JSONL, one \
                   event per line) instead of a span trace; exits 1 on any \
                   malformed line.")
  in
  let pref_store_arg =
    Arg.(value & flag
         & info [ "pref-store" ]
             ~doc:"Treat $(i,FILE) as a harvested preference store \
                   (dpoaf-prefstore/1 JSONL) instead of a span trace; exits \
                   1 on any malformed record.")
  in
  let run path journal pref_store =
    match (journal, pref_store) with
    | true, true -> die "--journal and --pref-store are mutually exclusive"
    | true, false -> run_journal_report path
    | false, true -> run_pref_store_report path
    | false, false -> run_report path
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Summarize a recorded trace: per-stage latency, cache hit rates \
             and the spec-violation histograms (aggregate and per domain).  \
             With --journal, summarize a serving event journal; with \
             --pref-store, validate and summarize a harvested preference \
             store.")
    Term.(const run $ path_arg $ journal_arg $ pref_store_arg)

(* ---------------- analyze ---------------- *)

module Analysis = Dpoaf_analysis
module Diag = Dpoaf_analysis.Diagnostic

(* The static sanity layer: spec sanity (satisfiability, tautology,
   pairwise redundancy, model-level vacuity) on the pack's rule book,
   lint on every world model, and structural lint + vacuity on
   controllers — either the --step response or the pack's demo
   responses.  Exits non-zero when any error-severity diagnostic fires,
   so `make check` can gate on a sane rule book. *)
let run_analyze domain steps json out pairwise suite explain =
  let (module D : Domain.S) = domain in
  let specs = D.specs () in
  let free = Dpoaf_logic.Symbol.of_atoms D.actions in
  let universal = D.universal () in
  let spec_diags = Analysis.Spec_sanity.check ~model:universal ~free ~pairwise specs in
  let scenario_models =
    List.map
      (fun sc ->
        match D.model sc with
        | Some m -> m
        | None -> die "domain %S lists scenario %S without a model" D.name sc)
      D.scenarios
  in
  let model_diags =
    Analysis.Model_lint.lint ~specs ~ignore:free universal
    @ List.concat_map
        (fun m ->
          (* scenario proposition sets are deliberately partial: only the
             universal model must cover the whole rule book *)
          Analysis.Model_lint.lint ~specs ~coverage:false m)
        scenario_models
  in
  let controllers =
    match steps with [] -> D.demo_responses | steps -> [ ("cli", steps) ]
  in
  let controller_diags =
    List.concat_map
      (fun (name, steps) ->
        let controller, _ = D.controller_of_steps ~name steps in
        let satisfied =
          (D.profile_of_controller ~model:universal controller)
            .Domain.satisfied
        in
        Analysis.Controller_lint.lint controller
        @ Analysis.Vacuity.diagnostics ~model:universal ~controller ~specs
            ~satisfied)
      controllers
  in
  (* --suite: the whole-book pass — conflict cores, realizability
     against every registered world model, the vocabulary coverage
     matrix, response-pool discrimination and joint redundancy *)
  let suite_diags =
    if not suite then []
    else
      let models =
        ("universal", universal)
        :: List.map2 (fun sc m -> (sc, m)) D.scenarios scenario_models
      in
      let pool =
        List.map
          (fun (name, steps) ->
            ( name,
              (D.profile_of_steps ~model:universal steps).Domain.satisfied ))
          D.demo_responses
      in
      Analysis.Suite_sanity.check ~suite:D.name ~propositions:D.propositions
        ~actions:D.actions ~models ~pool specs
  in
  (* --explain: replay-validated counterexample explanations for every
     violated spec of every analyzed response *)
  let explanations =
    if not explain then []
    else
      List.map
        (fun (name, steps) ->
          (name, Domain.explain_steps domain ~model:universal steps))
        controllers
  in
  let diags =
    Diag.sort (spec_diags @ model_diags @ controller_diags @ suite_diags)
  in
  let rendered =
    if json then begin
      let report_fields =
        match Diag.report_json diags with
        | Dpoaf_util.Json.Obj fields -> fields
        | _ -> assert false
      in
      let header =
        (* the pack name leads the report so multi-pack runs (make
           analysis-check) produce self-identifying artifacts *)
        [
          ("domain", Dpoaf_util.Json.str D.name);
          ("suite_checked", Dpoaf_util.Json.Bool suite);
        ]
      in
      let explain_fields =
        if not explain then []
        else
          [
            ( "explanations",
              Dpoaf_util.Json.arr
                (List.map
                   (fun (name, items) ->
                     Dpoaf_util.Json.obj
                       [
                         ("response", Dpoaf_util.Json.str name);
                         ( "items",
                           Dpoaf_util.Json.arr
                             (List.map Analysis.Explain.to_json items) );
                       ])
                   explanations) );
          ]
      in
      Dpoaf_util.Json.to_string
        (Dpoaf_util.Json.Obj (header @ report_fields @ explain_fields))
      ^ "\n"
    end
    else begin
      let buf = Buffer.create 1024 in
      List.iter
        (fun d -> Buffer.add_string buf (Diag.to_string d ^ "\n"))
        diags;
      List.iter
        (fun (name, items) ->
          if items <> [] then begin
            Buffer.add_string buf
              (Printf.sprintf "explanations for %s:\n" name);
            List.iter
              (fun e ->
                Buffer.add_string buf
                  ("  " ^ Analysis.Explain.to_string e ^ "\n"))
              items
          end)
        explanations;
      Buffer.add_string buf
        (Printf.sprintf
           "%s: %d diagnostic(s): %d error(s), %d warning(s), %d info(s) over \
            %d spec(s), %d model(s), %d controller(s)%s\n"
           D.name (List.length diags)
           (Diag.count Diag.Error diags)
           (Diag.count Diag.Warning diags)
           (Diag.count Diag.Info diags)
           (List.length specs)
           (1 + List.length scenario_models)
           (List.length controllers)
           (if suite then " (suite-level pass included)" else ""));
      Buffer.contents buf
    end
  in
  (match out with
  | None -> print_string rendered
  | Some path ->
      write_file path rendered;
      Printf.printf "analysis written to %s\n" path);
  if Diag.has_errors diags then exit 1

let analyze_cmd =
  let json_arg =
    Arg.(value & flag
         & info [ "json" ] ~doc:"Emit the diagnostic report as JSON (the \
                                 schema validated by test/analysis_validate.exe).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the report to $(docv) \
                                                  instead of stdout.")
  in
  let pairwise_arg =
    let doc =
      "Skip the quadratic pairwise-implication sweep over the rule book."
    in
    Term.(const not $ Arg.(value & flag & info [ "no-pairwise" ] ~doc))
  in
  let suite_arg =
    Arg.(value & flag
         & info [ "suite" ]
             ~doc:"Run the whole-suite pass as well: minimal conflict cores \
                   (SUITE001), realizability against every registered world \
                   model (SUITE002/SUITE003), the vocabulary coverage matrix \
                   (SPEC005/SPEC006), response-pool discrimination (SPEC007) \
                   and model-relative joint redundancy (SPEC008).")
  in
  let explain_arg =
    Arg.(value & flag
         & info [ "explain" ]
             ~doc:"Emit a replay-validated counterexample explanation for \
                   every violated specification of every analyzed response.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static sanity analysis of a pack's rule book, world models and \
             controllers: vacuity, dead states, guard completeness, \
             redundancy.  Exits 1 on any error-severity diagnostic.")
    Term.(const run_analyze $ domain_arg $ steps_arg $ json_arg $ out_arg
          $ pairwise_arg $ suite_arg $ explain_arg)

(* ---------------- smv ---------------- *)

let run_smv domain steps =
  let (module D : Domain.S) = domain in
  let steps =
    if steps <> [] then steps else snd (demo_response_for domain "")
  in
  let controller, _ = D.controller_of_steps ~name:"exported" steps in
  print_string (Dpoaf_automata.Smv.of_controller ~name:"controller" controller
                  ~props:D.propositions)

let smv_cmd =
  Cmd.v
    (Cmd.info "smv" ~doc:"Export a response's controller to NuSMV syntax.")
    Term.(const run_smv $ domain_arg $ steps_arg)

(* ---------------- serve ---------------- *)

module Serve = Dpoaf_serve

let socket_arg =
  let doc = "Unix-domain socket path for the serving daemon." in
  Arg.(value & opt string "/tmp/dpoaf.sock"
       & info [ "socket" ] ~docv:"PATH" ~doc)

let run_serve socket tcp_port shards batching prompt_cache domains checkpoint
    jobs max_batch flush_ms queue_capacity seed journal_path journal_max_kb
    pref_store_path pref_store_max_kb trace metrics_json =
  with_telemetry ~trace ~metrics_json @@ fun () ->
  let domains =
    match domains with
    | [] -> [ Dpoaf_domain.find_exn Dpoaf_domain.default ]
    | ds -> ds
  in
  if checkpoint <> None && List.length domains > 1 then
    die "--checkpoint applies to a single --domain; drop it to pre-train a \
         model per pack";
  let journal =
    Option.map
      (fun path ->
        Serve.Journal.create ~max_bytes:(journal_max_kb * 1024) path)
      journal_path
  in
  let pref_store =
    Option.map
      (fun path ->
        Refine.Pref_store.create ~max_bytes:(pref_store_max_kb * 1024) path)
      pref_store_path
  in
  let jemit ev attrs =
    match journal with Some j -> Serve.Journal.emit j ev attrs | None -> ()
  in
  let packs =
    List.map
      (fun domain ->
        let corpus = Pipeline.Corpus.build ~domain () in
        let lm =
          match checkpoint with
          | Some path -> (
              try
                let m = Dpoaf_lm.Checkpoint.load path in
                Printf.printf "loaded checkpoint %s\n%!" path;
                jemit "serve.checkpoint_load"
                  [
                    ("path", Dpoaf_util.Json.str path);
                    ("domain", Dpoaf_util.Json.str (Domain.name domain));
                  ];
                m
              with Dpoaf_lm.Checkpoint.Corrupt { path; reason } ->
                Printf.eprintf
                  "error: cannot load checkpoint %s: %s\n\
                   (re-create it with `dpoaf_cli finetune --out %s`)\n%!"
                  path reason path;
                exit 1)
          | None ->
              Printf.printf
                "no --checkpoint given: pre-training a small %s model (seed \
                 %d)...\n\
                 %!"
                (Domain.name domain) seed;
              Pipeline.Corpus.pretrained_model (Rng.create seed) corpus
        in
        (Some lm, corpus))
      domains
  in
  (* one engine + one labelled server per shard: each replica gets its own
     prompt-state caches (bounded by --prompt-cache) while the per-domain
     request counters share the untagged cells, so fleet totals need no
     aggregation.  A single shard keeps the historical untagged names. *)
  let config = { Serve.Server.jobs; max_batch; flush_ms; queue_capacity } in
  let make_shard i =
    let tag = if shards = 1 then None else Some (Serve.Router.shard_name i) in
    let engine =
      Serve.Engine.create_multi ?journal ?pref_store ?tag
        ~prompt_cache_capacity:prompt_cache packs
    in
    let server =
      Serve.Server.create ~config ~batching ?label:tag
        ~handler:(Serve.Engine.handle engine) ?journal ()
    in
    (engine, server)
  in
  let shard_pairs = List.init shards make_shard in
  let engine0 = fst (List.hd shard_pairs) in
  let router =
    Serve.Router.create (Array.of_list (List.map snd shard_pairs))
  in
  (* the ops plane: stats filtered by the engine's domain registry, health
     composed from the fleet's queue views and per-domain counters *)
  let ops =
    {
      Serve.Daemon.stats =
        (fun ~domain -> Serve.Engine.stats_body engine0 ~domain);
      health =
        (fun ~domain ->
          match Serve.Engine.request_counts engine0 ~domain with
          | Error msg -> Serve.Protocol.Failed msg
          | Ok counts ->
              let h = Serve.Router.health router in
              Serve.Protocol.Health_report
                {
                  queue_depth = h.Serve.Server.queue_depth;
                  in_flight_batches = h.Serve.Server.in_flight_batches;
                  draining = h.Serve.Server.draining;
                  domains = counts;
                  shards =
                    (if shards > 1 then Serve.Router.shard_healths router
                     else []);
                });
    }
  in
  Printf.printf
    "serving %s on %s (shards=%d, batching=%s, jobs=%d/shard, max_batch=%d, \
     flush_ms=%g, queue=%d/shard); SIGINT or SIGTERM drains and stops\n\
     %!"
    (String.concat ", " (Serve.Engine.domains engine0))
    socket shards
    (match batching with `Flush -> "flush" | `Continuous -> "continuous")
    jobs max_batch flush_ms queue_capacity;
  let stats =
    Serve.Daemon.run ~socket ?tcp_port
      ~on_tcp_listen:(fun port ->
        Printf.printf "tcp listener on 127.0.0.1:%d\n%!" port)
      ~router ~ops ?journal ?pref_store ()
  in
  (match journal with
  | Some j ->
      Serve.Journal.close j;
      Printf.printf "journal written to %s\n" (Serve.Journal.path j)
  | None -> ());
  (match pref_store with
  | Some s ->
      Refine.Pref_store.close s;
      Printf.printf "preference store written to %s\n"
        (Refine.Pref_store.path s)
  | None -> ());
  Printf.printf
    "daemon stopped: connections=%d requests=%d responses=%d \
     protocol_errors=%d\n"
    stats.Serve.Daemon.connections stats.Serve.Daemon.requests
    stats.Serve.Daemon.responses stats.Serve.Daemon.protocol_errors

let tcp_port_arg =
  Arg.(value & opt (some int) None
       & info [ "tcp-port" ] ~docv:"PORT"
           ~doc:"Use TCP on 127.0.0.1:$(docv) — same NDJSON protocol as the \
                 Unix socket.  For $(b,serve): listen there alongside the \
                 socket (0 picks an ephemeral port, printed at startup); \
                 for client commands: connect there instead of \
                 $(b,--socket).")

let batching_arg =
  let mode_conv =
    Arg.enum [ ("continuous", `Continuous); ("flush", `Flush) ]
  in
  Arg.(value & opt mode_conv `Continuous
       & info [ "batching" ] ~docv:"MODE"
           ~doc:"Batching discipline: $(b,continuous) keeps every worker \
                 slot refilled as requests complete; $(b,flush) restores \
                 the flush-and-wait dispatcher (responses are bit-identical \
                 either way).")

let serve_cmd =
  let domains_arg =
    let doc =
      "Serve this domain pack (repeatable; first is the default for \
       requests without a domain field; default: driving)."
    in
    Arg.(value & opt_all domain_conv [] & info [ "domain" ] ~docv:"NAME" ~doc)
  in
  let checkpoint_arg =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Serve this fine-tuned checkpoint (single-domain only; \
                   default: pre-train a small model per pack at startup).")
  in
  let max_batch_arg =
    Arg.(value & opt int Serve.Server.default_config.Serve.Server.max_batch
         & info [ "max-batch" ] ~docv:"N" ~doc:"Size-based batch flush.")
  in
  let flush_ms_arg =
    Arg.(value & opt float Serve.Server.default_config.Serve.Server.flush_ms
         & info [ "flush-ms" ] ~docv:"MS" ~doc:"Time-based batch flush.")
  in
  let queue_arg =
    Arg.(value
         & opt int Serve.Server.default_config.Serve.Server.queue_capacity
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission-queue capacity; beyond it requests are \
                   rejected.")
  in
  let journal_arg =
    Arg.(value & opt (some string) None
         & info [ "journal" ] ~docv:"FILE"
             ~doc:"Append serving events (requests, rejects, expiries, \
                   batches, checkpoint loads, drains) to a size-rotated \
                   JSONL journal at $(docv); read it back with \
                   `dpoaf_cli report --journal $(docv)`.")
  in
  let journal_max_kb_arg =
    Arg.(value & opt pos_int_conv 1024
         & info [ "journal-max-kb" ] ~docv:"KB"
             ~doc:"Size cap per journal file before rotation (with \
                   $(b,--journal)).")
  in
  let pref_store_arg =
    Arg.(value & opt (some string) None
         & info [ "pref-store" ] ~docv:"FILE"
             ~doc:"Harvest every accepted refine repair as an (original, \
                   repaired) preference pair with per-spec provenance into a \
                   size-rotated JSONL store at $(docv) \
                   (dpoaf-prefstore/1); validate and summarize it with \
                   `dpoaf_cli report --pref-store $(docv)`.")
  in
  let pref_store_max_kb_arg =
    Arg.(value & opt pos_int_conv 1024
         & info [ "pref-store-max-kb" ] ~docv:"KB"
             ~doc:"Size cap per store file before rotation (with \
                   $(b,--pref-store)).")
  in
  let shards_arg =
    Arg.(value & opt pos_int_conv 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Replica count: requests hash to a shard by prompt \
                   identity so each replica's prompt-state cache stays hot; \
                   every shard gets its own engine, $(b,--jobs) workers and \
                   $(b,--queue)-bounded admission queue.  Responses are \
                   bit-identical for every value.")
  in
  let prompt_cache_arg =
    Arg.(value & opt pos_int_conv 256
         & info [ "prompt-cache" ] ~docv:"N"
             ~doc:"Per-replica prompt-state cache capacity (entries per \
                   domain pack).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the batched inference-and-verification daemon (line-delimited \
             JSON over a Unix socket and optionally TCP), serving one or \
             more domain packs across one or more shards.")
    Term.(const run_serve $ socket_arg $ tcp_port_arg $ shards_arg
          $ batching_arg $ prompt_cache_arg $ domains_arg $ checkpoint_arg
          $ jobs_arg $ max_batch_arg $ flush_ms_arg $ queue_arg $ seed_arg
          $ journal_arg $ journal_max_kb_arg $ pref_store_arg
          $ pref_store_max_kb_arg $ trace_arg $ metrics_json_arg)

(* ---------------- loadgen ---------------- *)

(* responses re-encoded with the timing fields zeroed and sorted by id:
   bit-comparable across transports, shard counts and batching modes *)
let normalized_dump responses =
  let lines =
    List.map
      (fun (r : Serve.Protocol.response) ->
        Serve.Protocol.response_to_string
          { r with Serve.Protocol.queue_wait_us = 0.0; execute_us = 0.0 })
      responses
  in
  String.concat "\n" (List.sort compare lines) ^ "\n"

let run_loadgen socket tcp_port domain rate duration mix deadline_ms seed out
    sweep sweep_p99_ms dump =
  let endpoint =
    match tcp_port with
    | Some p -> Printf.sprintf "127.0.0.1:%d" p
    | None -> socket
  in
  let config =
    {
      Serve.Loadgen.socket;
      tcp_port;
      rate;
      duration_s = duration;
      mix;
      deadline_ms;
      domain;
      seed;
    }
  in
  let body () =
    match sweep with
    | Some sweep ->
        if dump <> None then
          die "--dump applies to a single run; drop --sweep";
        let s =
          Serve.Loadgen.run_sweep ~progress:Serve.Loadgen.print_level config
            ~sweep ~p99_budget_ms:sweep_p99_ms
        in
        Serve.Loadgen.print_sweep_report s;
        (match out with
        | None -> ()
        | Some path ->
            write_file path
              (Dpoaf_util.Json.to_string (Serve.Loadgen.sweep_report_json s)
              ^ "\n");
            Printf.printf "sweep report written to %s\n" path)
    | None ->
        let captured = ref [] in
        let capture =
          Option.map
            (fun _ -> fun r -> captured := r :: !captured)
            dump
        in
        let report = Serve.Loadgen.run ?capture config in
        Serve.Loadgen.print_report report;
        (match dump with
        | None -> ()
        | Some path ->
            write_file path (normalized_dump !captured);
            Printf.printf "response dump written to %s\n" path);
        (match out with
        | None -> ()
        | Some path ->
            write_file path
              (Dpoaf_util.Json.to_string (Serve.Loadgen.report_json report)
              ^ "\n");
            Printf.printf "loadgen report written to %s\n" path)
  in
  match body () with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "error: cannot reach daemon at %s: %s\n%!" endpoint
        (Unix.error_message e);
      exit 1
  | exception Invalid_argument msg ->
      Printf.eprintf "error: %s\n%!" msg;
      exit 1
  | exception Failure msg ->
      Printf.eprintf "error: %s\n%!" msg;
      exit 1

let loadgen_cmd =
  let domain_opt_arg =
    let doc =
      "Synthesize traffic from this pack's tasks and tag every request with \
       it (default: untagged traffic for the server's default pack)."
    in
    Arg.(value & opt (some string) None & info [ "domain" ] ~docv:"NAME" ~doc)
  in
  let rate_arg =
    Arg.(value & opt float 200.0
         & info [ "rate" ] ~docv:"RPS" ~doc:"Offered load, requests/second.")
  in
  let duration_arg =
    Arg.(value & opt float 2.0
         & info [ "duration" ] ~docv:"S" ~doc:"Send window in seconds.")
  in
  let mix_conv =
    let parse s =
      match Serve.Loadgen.mix_of_string s with
      | Ok m -> Ok m
      | Error msg -> Error (`Msg msg)
    in
    let print ppf (m : Serve.Loadgen.mix) =
      Format.fprintf ppf "generate=%g,verify=%g,score_pair=%g,refine=%g"
        m.Serve.Loadgen.generate m.Serve.Loadgen.verify
        m.Serve.Loadgen.score_pair m.Serve.Loadgen.refine
    in
    Arg.conv (parse, print)
  in
  let mix_arg =
    Arg.(value & opt mix_conv Serve.Loadgen.default_mix
         & info [ "mix" ] ~docv:"MIX"
             ~doc:"Workload mix, either named classes \
                   ($(b,generate=0.2,verify=0.4,refine=0.4); unlisted \
                   classes weigh 0) or the legacy positional form \
                   $(b,G,V,S) for generate, verify, score_pair.  Unknown \
                   class names are rejected.")
  in
  let deadline_arg =
    Arg.(value & opt (some float) None
         & info [ "deadline-ms" ] ~docv:"MS"
             ~doc:"Attach this deadline to every request.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out"; "o" ] ~docv:"FILE"
             ~doc:"Also write the report as JSON to $(docv), including the \
                   full latency histogram with per-bucket bounds and \
                   counts.")
  in
  let sweep_conv =
    let parse s =
      match Serve.Loadgen.sweep_of_string s with
      | Ok sw -> Ok sw
      | Error msg -> Error (`Msg msg)
    in
    let print ppf (s : Serve.Loadgen.sweep) =
      Format.fprintf ppf "%g:%g:%g" s.Serve.Loadgen.start_rps
        s.Serve.Loadgen.step_rps s.Serve.Loadgen.max_rps
    in
    Arg.conv (parse, print)
  in
  let sweep_arg =
    Arg.(value & opt (some sweep_conv) None
         & info [ "sweep" ] ~docv:"START:STEP:MAX"
             ~doc:"Saturation sweep: step the offered rate from $(b,START) \
                   by $(b,STEP) up to $(b,MAX) rps, one run of \
                   $(b,--duration) each, stopping at the first level the \
                   daemon fails to sustain (p99 over the budget, or any \
                   reject/expiry/error/loss).  Reports the knee and the \
                   achieved rps there ($(b,max_rps_at_p99)).")
  in
  let sweep_p99_arg =
    Arg.(value & opt float 50.0
         & info [ "sweep-p99-ms" ] ~docv:"MS"
             ~doc:"p99 latency budget a sweep level must meet to count as \
                   sustained (with $(b,--sweep)).")
  in
  let dump_arg =
    Arg.(value & opt (some string) None
         & info [ "dump" ] ~docv:"FILE"
             ~doc:"Write every response to $(docv), sorted by request id \
                   with the timing fields zeroed — bit-comparable across \
                   transports, shard counts and batching modes (single \
                   runs only).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Replay synthetic traffic against a running daemon (Unix socket \
             or TCP) and report throughput and latency percentiles, or find \
             the saturation knee with $(b,--sweep).")
    Term.(const run_loadgen $ socket_arg $ tcp_port_arg $ domain_opt_arg
          $ rate_arg $ duration_arg $ mix_arg $ deadline_arg $ seed_arg
          $ out_arg $ sweep_arg $ sweep_p99_arg $ dump_arg)

(* ---------------- stats / health ---------------- *)

(* One-shot ops-plane client: connect, send one request line, read one
   response line.  Blocking I/O — the daemon answers ops verbs ahead of
   the admission queue, so a response arrives within one loop turn even
   under full load. *)
let ops_roundtrip ?tcp_port socket kind =
  let req = { Serve.Protocol.id = "ops"; kind; deadline_ms = None } in
  let endpoint =
    match tcp_port with
    | Some p -> Printf.sprintf "127.0.0.1:%d" p
    | None -> socket
  in
  let fd =
    try
      match tcp_port with
      | None ->
          let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_UNIX socket);
          fd
      | Some port ->
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          fd
    with Unix.Unix_error (e, _, _) ->
      die "cannot reach daemon at %s: %s" endpoint (Unix.error_message e)
  in
  let socket = endpoint in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let line = Serve.Protocol.request_to_string req ^ "\n" in
  let rec write_all off =
    if off < String.length line then
      write_all
        (off + Unix.write_substring fd line off (String.length line - off))
  in
  (try write_all 0
   with Unix.Unix_error (e, _, _) ->
     die "write to daemon at %s failed: %s" socket (Unix.error_message e));
  let buf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let rec read_line () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> die "daemon at %s closed the connection before answering" socket
    | n -> (
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        match String.index_opt s '\n' with
        | Some i -> String.sub s 0 i
        | None -> read_line ())
    | exception Unix.Unix_error (e, _, _) ->
        die "read from daemon at %s failed: %s" socket (Unix.error_message e)
  in
  read_line ()

(* Prometheus text exposition of a stats report: dots become underscores
   under a dpoaf_ prefix; histograms render as cumulative
   _bucket{le=...}/_sum/_count families and their derived flat keys
   (.count/.sum/.min/.max/.p50/...) are dropped from the scalar section. *)
let prom_name s =
  let b = Buffer.create (String.length s + 6) in
  Buffer.add_string b "dpoaf_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    s;
  Buffer.contents b

let prom_num v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let prometheus_of_stats ~metrics ~histograms ~runtime =
  let b = Buffer.create 4096 in
  let hist_names = List.map fst histograms in
  let hist_derived k =
    List.exists
      (fun h ->
        List.exists
          (fun suffix -> k = h ^ "." ^ suffix)
          [ "count"; "sum"; "min"; "max"; "p50"; "p90"; "p99" ])
      hist_names
  in
  let flat_type k =
    match String.rindex_opt k '.' with
    | None -> "counter"
    | Some i -> (
        match String.sub k (i + 1) (String.length k - i - 1) with
        | "level" | "size" | "min" | "max" | "p50" | "p90" | "p99" -> "gauge"
        | _ -> "counter")
  in
  let scalar ty (k, v) =
    let n = prom_name k in
    Buffer.add_string b
      (Printf.sprintf "# TYPE %s %s\n%s %s\n" n ty n (prom_num v))
  in
  List.iter
    (fun (k, v) -> if not (hist_derived k) then scalar (flat_type k) (k, v))
    metrics;
  List.iter (scalar "gauge") runtime;
  List.iter
    (fun (k, (s : Dpoaf_exec.Metrics.hist_snapshot)) ->
      let n = prom_name k in
      Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
      let cum = ref 0 in
      List.iter
        (fun (_, upper, c) ->
          cum := !cum + c;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n (prom_num upper)
               !cum))
        s.Dpoaf_exec.Metrics.buckets;
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n s.Dpoaf_exec.Metrics.count);
      Buffer.add_string b
        (Printf.sprintf "%s_sum %s\n" n (prom_num s.Dpoaf_exec.Metrics.sum));
      Buffer.add_string b
        (Printf.sprintf "%s_count %d\n" n s.Dpoaf_exec.Metrics.count))
    histograms;
  Buffer.contents b

let run_stats socket tcp_port domain watch format =
  let once () =
    let line =
      ops_roundtrip ?tcp_port socket (Serve.Protocol.Stats { domain })
    in
    match Serve.Protocol.response_of_string line with
    | Error msg -> die "malformed stats response: %s" msg
    | Ok { Serve.Protocol.rbody = Serve.Protocol.Failed msg; _ } ->
        die "%s" msg
    | Ok
        {
          Serve.Protocol.rbody =
            Serve.Protocol.Stats_report { metrics; histograms; runtime };
          _;
        } -> (
        match format with
        | `Json -> print_endline line (* the exact wire bytes *)
        | `Prom ->
            print_string (prometheus_of_stats ~metrics ~histograms ~runtime))
    | Ok _ -> die "unexpected response body to a stats request"
  in
  match watch with
  | None -> once ()
  | Some period ->
      while true do
        once ();
        print_newline ();
        flush stdout;
        Unix.sleepf (float_of_int period)
      done

let ops_domain_arg =
  let doc =
    "Restrict the report to this domain pack (validity is decided by the \
     daemon's registry)."
  in
  Arg.(value & opt (some string) None & info [ "domain" ] ~docv:"NAME" ~doc)

let stats_cmd =
  let watch_arg =
    Arg.(value & opt (some pos_int_conv) None
         & info [ "watch" ] ~docv:"N"
             ~doc:"Refresh every $(docv) seconds until interrupted \
                   (reconnecting each tick; reports are separated by a \
                   blank line).")
  in
  let format_arg =
    let fmt = Arg.enum [ ("json", `Json); ("prom", `Prom) ] in
    Arg.(value & opt fmt `Json
         & info [ "format" ] ~docv:"FORMAT"
             ~doc:"Output format: $(b,json) (the raw response line, exact \
                   wire bytes) or $(b,prom) (Prometheus text exposition).")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Query a running daemon's live metrics: counters, latency \
             histograms with per-bucket bounds, cache hit rates and \
             GC/runtime gauges.  Answered ahead of the admission queue, so \
             it works mid-load.")
    Term.(const run_stats $ socket_arg $ tcp_port_arg $ ops_domain_arg
          $ watch_arg $ format_arg)

let run_health socket tcp_port domain =
  let line =
    ops_roundtrip ?tcp_port socket (Serve.Protocol.Health { domain })
  in
  match Serve.Protocol.response_of_string line with
  | Error msg -> die "malformed health response: %s" msg
  | Ok { Serve.Protocol.rbody = Serve.Protocol.Failed msg; _ } -> die "%s" msg
  | Ok _ -> print_endline line

let health_cmd =
  Cmd.v
    (Cmd.info "health"
       ~doc:"Query a running daemon's liveness: admission-queue depth, \
             in-flight requests, drain state, per-domain request counters \
             and (when sharded) the per-shard breakdown.  Exits 1 if the \
             daemon reports an error.")
    Term.(const run_health $ socket_arg $ tcp_port_arg $ ops_domain_arg)

(* ---------------- main ---------------- *)

let () =
  let info =
    Cmd.info "dpoaf_cli" ~version:"1.0"
      ~doc:"Fine-tuning language models using formal methods feedback (DPO-AF)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ domains_cmd; tasks_cmd; specs_cmd; verify_cmd; synthesize_cmd;
            refine_cmd; finetune_cmd; simulate_cmd; report_cmd; analyze_cmd;
            smv_cmd;
            serve_cmd; loadgen_cmd; stats_cmd; health_cmd ]))
