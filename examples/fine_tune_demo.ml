(* End-to-end DPO-AF in miniature (Figure 2's pipeline):

   1. pre-train the language model on a mixed-quality corpus,
   2. sample responses for each training task,
   3. rank them by formal verification (number of specs satisfied),
   4. fine-tune with DPO on the mined preference pairs,
   5. compare specification satisfaction before and after.

   Run with: dune exec examples/fine_tune_demo.exe
   (takes roughly a minute) *)

open Dpoaf_pipeline
module Domain = Dpoaf_domain.Domain
module Trainer = Dpoaf_dpo.Trainer
module Rng = Dpoaf_util.Rng

let () =
  let corpus = Corpus.build () in
  let rng = Rng.create 7 in
  print_endline "pre-training the language model on the synthetic corpus...";
  let reference = Corpus.pretrained_model rng corpus in
  let feedback = Feedback.create () in

  let mean split model =
    Dpoaf.mean_specs_satisfied corpus feedback model (Rng.create 100) ~samples:12 split
  in
  Printf.printf "before fine-tuning: training %.2f/15, validation %.2f/15\n%!"
    (mean Domain.Training reference)
    (mean Domain.Validation reference);

  let config =
    {
      Dpoaf.responses_per_task = 16;
      temperature = 1.0;
      eval_samples = 12;
      trainer =
        { Trainer.default_config with epochs = 80; checkpoint_every = 20; lr = 2e-3 };
    }
  in
  print_endline "collecting verification-ranked pairs and running DPO...";
  let result = Dpoaf.run ~config ~corpus ~feedback ~reference ~seeds:[ 1 ] rng in
  Printf.printf "mined %d preference pairs from the training tasks\n" result.Dpoaf.pairs_used;

  List.iter
    (fun c ->
      Printf.printf "  epoch %3d: training %.2f/15  validation %.2f/15\n"
        c.Dpoaf.epoch c.Dpoaf.training_score c.Dpoaf.validation_score)
    result.Dpoaf.curve;

  let final = (List.hd result.Dpoaf.runs).Trainer.final in
  Printf.printf "after fine-tuning:  training %.2f/15, validation %.2f/15\n"
    (mean Domain.Training final)
    (mean Domain.Validation final);

  (* show what the fine-tuned model now writes for the right-turn task *)
  let setup = Corpus.setup_by_id corpus "right_turn_tl" in
  let snap = Dpoaf_lm.Sampler.snapshot final in
  let tokens =
    Dpoaf_lm.Sampler.greedy snap ~prompt:setup.Corpus.prompt
      ~grammar:setup.Corpus.grammar ~min_clauses:setup.Corpus.min_clauses
      ~max_clauses:setup.Corpus.max_clauses
  in
  print_endline "greedy response for \"turn right at the traffic light\":";
  List.iteri
    (fun i s -> Printf.printf "  %d. %s\n" (i + 1) s)
    (Corpus.steps_of_tokens corpus tokens)
