(* Benchmark harness: regenerates every figure of the paper's evaluation
   (§5) and times the core kernels with Bechamel.

     dune exec bench/main.exe            full reproduction (several minutes)
     dune exec bench/main.exe -- --fast  scaled-down run (~2 minutes)
     dune exec bench/main.exe -- --only fig9,fig11
     dune exec bench/main.exe -- --jobs 4   domain-parallel scoring/rollouts

   With --csv DIR, each printed table is also written as DIR/<name>.csv.
   With --trace FILE, spans and metrics are recorded to FILE (JSONL, plus
   FILE.perfetto.json for chrome://tracing); --metrics-json FILE writes the
   final metrics summary as JSON; --section-metrics prints each section's
   own metric delta (Metrics.delta of summary snapshots — process-lifetime
   totals are never reset).

   Sections:
     fig7   §5.1 right-turn worked example (before/after, Φ5 counterexample)
     fig18  Appendix C left-turn worked example (Φ12)
     fig8   DPO loss / accuracy / marginal preference over epochs (seeds)
     fig9   specifications satisfied vs DPO epoch (training + validation)
     fig11  empirical P_Φ in the simulator, before vs after fine-tuning
     fig12  vision confidence→accuracy mapping, sim vs real
     fig13  detection accuracy by weather/light condition
     shield     extension: runtime safety shield under perception noise
     abl-rank   ablation: LoRA rank
     abl-decode ablation: grammar-constrained vs unconstrained decoding
     abl-repair baseline: specification-guided repair vs fine-tuning
     abl-rl     baseline: REINFORCE with verifier reward vs DPO
     abl-arch   ablation: bag-of-words vs GRU conditioner
     iter-dpo   extension: iterative DPO-AF
     speedup    parallel scaling of the Fig 11 empirical loop (lib/exec)
     serving    throughput of the batched serving scheduler (lib/serve)
     serving_scale  sharded-fleet saturation sweep through the daemon +
                loadgen (writes BENCH_serving_scale.json)
     domains    every registered domain pack through the DPO loop + one
                serve batch (writes BENCH_domains.json)
     refine     counterexample-guided refinement over each pack's seeded
                defect pool (writes BENCH_refine.json)
     micro  Bechamel timings of the core kernels
     kernels    fused scoring + arena tape + incremental decoding
                before/after (writes BENCH_kernels.json)

   Unknown --only names are rejected with the list of valid sections. *)

open Dpoaf_driving
module Dom = Dpoaf_domain.Domain
module Pipeline = Dpoaf_pipeline
module Trainer = Dpoaf_dpo.Trainer
module MC = Dpoaf_automata.Model_checker
module Rng = Dpoaf_util.Rng
module Stats = Dpoaf_util.Stats
module Table = Dpoaf_util.Table

let fast = Array.exists (( = ) "--fast") Sys.argv

(* --jobs N sets the worker count of the shared Dpoaf_exec pool; every
   parallel stage (scoring, rollouts, multi-seed training) inherits it. *)
let jobs =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then 1
    else if Sys.argv.(i) = "--jobs" then
      match int_of_string_opt Sys.argv.(i + 1) with
      | Some n when n >= 1 -> n
      | _ -> failwith "--jobs expects a positive integer"
    else find (i + 1)
  in
  find 1

let () = Dpoaf_exec.Pool.set_default_jobs jobs

let only =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = "--only" then
      Some (String.split_on_char ',' Sys.argv.(i + 1))
    else find (i + 1)
  in
  find 1

let enabled name = match only with None -> true | Some l -> List.mem name l

let string_opt flag =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let csv_dir = string_opt "--csv"
let trace_file = string_opt "--trace"
let metrics_json_file = string_opt "--metrics-json"
let section_metrics = Array.exists (( = ) "--section-metrics") Sys.argv

(* Dated results series: every run that produces headline numbers writes
   <results-dir>/<UTC-stamp>.json and refreshes <results-dir>/latest.json;
   bench/perf_gate.exe compares latest.json against the pinned
   baseline.json.  --results-dir beats DPOAF_RESULTS_DIR beats the
   default. *)
let results_dir =
  match string_opt "--results-dir" with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "DPOAF_RESULTS_DIR" with
      | Some d -> d
      | None -> "bench/results")

let headline : (string * float) list ref = ref []

(* the pinned perf numbers the regression gate watches; lower is better *)
let record_headline name v = headline := !headline @ [ (name, v) ]

let () = if trace_file <> None then Dpoaf_exec.Trace.enable ()

(* print a table and, with --csv DIR, also write DIR/<name>.csv *)
let emit name table =
  Table.print table;
  match csv_dir with
  | None -> ()
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".csv") in
      Dpoaf_util.Csv.write path ~header:(Table.header table) (Table.rows table);
      Printf.printf "(wrote %s)\n" path

let section name title =
  if enabled name then begin
    Printf.printf "\n%s\n=== [%s] %s%s\n%s\n%!" (String.make 72 '=') name title
      (if fast then "  (--fast)" else "")
      (String.make 72 '=');
    true
  end
  else false

let wallclock f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Fig 7 / §5.1 and Fig 18 / Appendix C: worked examples               *)

let worked_example name title scenario before after highlight =
  if section name title then begin
    let table =
      Table.create [ "response"; "scenario"; "universal"; "failing (scenario)" ]
    in
    let row label steps =
      let controller, _ = Evaluate.controller_of_steps ~name:label steps in
      let verdicts = Evaluate.verdicts ~model:(Models.model scenario) controller in
      let failing =
        List.filter_map
          (fun (n, _, v) -> if MC.is_holds v then None else Some n)
          verdicts
      in
      Table.add_row table
        [
          label;
          Printf.sprintf "%d/15" (15 - List.length failing);
          Printf.sprintf "%d/15" (Evaluate.count_specs controller);
          (if failing = [] then "-" else String.concat " " failing);
        ];
      controller
    in
    let ctrl_before = row "before fine-tuning" before in
    let _ = row "after fine-tuning" after in
    emit name table;
    Printf.printf "\ncounterexample for %s (before fine-tuning):\n" highlight;
    match
      MC.check ~model:(Models.model scenario) ~controller:ctrl_before
        (List.assoc highlight Specs.all)
    with
    | MC.Holds -> print_endline "  unexpectedly holds"
    | MC.Fails cex ->
        List.iter (Printf.printf "  %s\n") cex.MC.prefix_descr;
        print_endline "  -- cycle --";
        List.iter (Printf.printf "  %s\n") cex.MC.cycle_descr
  end

let fig7 () =
  worked_example "fig7" "Right-turn controllers before/after fine-tuning (§5.1)"
    Models.Traffic_light Responses.right_turn_before_ft Responses.right_turn_after_ft
    "phi_5"

let fig18 () =
  worked_example "fig18" "Left-turn controllers before/after fine-tuning (App. C)"
    Models.Left_turn_light Responses.left_turn_before_ft Responses.left_turn_after_ft
    "phi_12"

(* ------------------------------------------------------------------ *)
(* Fig 8 + Fig 9: the DPO-AF training experiment                       *)

type training_artifacts = {
  corpus : Pipeline.Corpus.t;
  reference : Dpoaf_lm.Model.t;
  result : Pipeline.Dpoaf.result;
  epochs : int;
  checkpoint_every : int;
}

let artifacts = ref None

let train_artifacts () =
  match !artifacts with
  | Some a -> a
  | None ->
      let seeds = if fast then [ 1; 2 ] else [ 1; 2; 3; 4; 5 ] in
      let epochs = if fast then 60 else 200 in
      let checkpoint_every = if fast then 10 else 20 in
      let corpus = Pipeline.Corpus.build () in
      let rng = Rng.create 2024 in
      Printf.printf "pre-training the language model...\n%!";
      let reference, t_pre =
        wallclock (fun () -> Pipeline.Corpus.pretrained_model rng corpus)
      in
      Printf.printf "  done in %.1fs\n%!" t_pre;
      let feedback = Pipeline.Feedback.create () in
      let config =
        {
          Pipeline.Dpoaf.responses_per_task = (if fast then 16 else 24);
          temperature = 1.0;
          eval_samples = (if fast then 8 else 16);
          trainer =
            { Trainer.default_config with epochs; checkpoint_every; lr = 2e-3 };
        }
      in
      Printf.printf
        "collecting verification-ranked pairs and training %d seed(s)...\n%!"
        (List.length seeds);
      let result, t_train =
        wallclock (fun () ->
            Pipeline.Dpoaf.run ~config ~corpus ~feedback ~reference ~seeds rng)
      in
      let stats = Pipeline.Feedback.cache_stats feedback in
      Printf.printf
        "  done in %.1fs — %d preference pairs, %d verifier calls (%d cached)\n%!"
        t_train result.Pipeline.Dpoaf.pairs_used stats.Dpoaf_exec.Cache.misses
        stats.Dpoaf_exec.Cache.hits;
      let a = { corpus; reference; result; epochs; checkpoint_every } in
      artifacts := Some a;
      a

let fig8 () =
  if section "fig8" "DPO loss, accuracy and marginal preference (Figure 8)" then begin
    let a = train_artifacts () in
    let runs = a.result.Pipeline.Dpoaf.runs in
    let stat_at epoch f =
      List.map
        (fun run ->
          let s =
            List.find
              (fun (s : Trainer.epoch_stats) -> s.Trainer.epoch = epoch)
              run.Trainer.stats
          in
          f s)
        runs
    in
    let table =
      Table.create
        [ "epoch"; "loss mean"; "loss [min,max]"; "accuracy"; "acc [min,max]";
          "margin"; "margin [min,max]" ]
    in
    let epochs_to_show =
      List.filter (fun e -> e > 0)
        (List.init
           ((a.epochs / a.checkpoint_every) + 1)
           (fun i -> i * a.checkpoint_every))
    in
    List.iter
      (fun epoch ->
        let range f =
          let xs = stat_at epoch f in
          let lo, hi = Stats.min_max xs in
          (Stats.mean xs, lo, hi)
        in
        let lm, ll, lh = range (fun s -> s.Trainer.loss) in
        let am, al, ah = range (fun s -> s.Trainer.accuracy) in
        let mm, ml, mh = range (fun s -> s.Trainer.margin) in
        Table.add_row table
          [
            string_of_int epoch;
            Printf.sprintf "%.4f" lm;
            Printf.sprintf "[%.4f, %.4f]" ll lh;
            Printf.sprintf "%.3f" am;
            Printf.sprintf "[%.3f, %.3f]" al ah;
            Printf.sprintf "%.2f" mm;
            Printf.sprintf "[%.2f, %.2f]" ml mh;
          ])
      epochs_to_show;
    emit "fig8" table;
    Printf.printf
      "\nexpected shape (paper Fig 8): loss decreases toward 0, accuracy rises\n\
       toward 1, marginal preference grows from 0; seed bands stay narrow.\n"
  end

let fig9 () =
  if section "fig9" "Specifications satisfied vs DPO epoch (Figure 9)" then begin
    let a = train_artifacts () in
    let total =
      float_of_int (Dom.spec_count a.corpus.Pipeline.Corpus.domain)
    in
    let table =
      Table.create
        [
          "epoch";
          Printf.sprintf "training /%.0f" total;
          "training %";
          Printf.sprintf "validation /%.0f" total;
          "validation %";
        ]
    in
    List.iter
      (fun c ->
        Table.add_row table
          [
            string_of_int c.Pipeline.Dpoaf.epoch;
            Printf.sprintf "%.2f" c.Pipeline.Dpoaf.training_score;
            Printf.sprintf "%.0f%%" (100.0 *. c.Pipeline.Dpoaf.training_score /. total);
            Printf.sprintf "%.2f" c.Pipeline.Dpoaf.validation_score;
            Printf.sprintf "%.0f%%" (100.0 *. c.Pipeline.Dpoaf.validation_score /. total);
          ])
      a.result.Pipeline.Dpoaf.curve;
    emit "fig9" table;
    Printf.printf
      "\nexpected shape (paper Fig 9): both curves rise from ≈60-70%% toward\n\
       ≥90%% as fine-tuning progresses, validation tracking training.\n"
  end

(* ------------------------------------------------------------------ *)
(* Fig 11: empirical satisfaction rates in the simulator               *)

let fig11 () =
  if section "fig11" "Empirical P_Φ before vs after fine-tuning (Figure 11)" then begin
    let rollouts = if fast then 150 else 500 in
    let model = Models.model Models.Traffic_light in
    let mk name steps = fst (Evaluate.controller_of_steps ~name steps) in
    let config =
      { Dpoaf_sim.Empirical.rollouts; steps = 40;
        noise = { Dpoaf_sim.World.miss_rate = 0.02; false_rate = 0.01 }; seed = 7 }
    in
    let eval c =
      Dpoaf_sim.Empirical.evaluate ~model ~controller:c ~specs:Specs.first_five config
    in
    let before = eval (mk "before" Responses.right_turn_before_ft) in
    let after = eval (mk "after" Responses.right_turn_after_ft) in
    let table = Table.create [ "spec"; "before FT"; "after FT"; "delta" ] in
    List.iter2
      (fun (name, b) (_, a) ->
        Table.add_row table
          [ name; Printf.sprintf "%.3f" b; Printf.sprintf "%.3f" a;
            Printf.sprintf "%+.3f" (a -. b) ])
      before after;
    emit "fig11" table;
    Printf.printf
      "\nexpected shape (paper Fig 11): every specification's satisfaction\n\
       rate is at least as high after fine-tuning (%d rollouts, 2%% missed /\n\
       1%% false detections).\n" rollouts
  end

(* ------------------------------------------------------------------ *)
(* Fig 12 and Fig 13: vision consistency                               *)

let fig12 () =
  if section "fig12" "Vision confidence→accuracy mapping, sim vs real (Figure 12)"
  then begin
    let n = if fast then 20000 else 50000 in
    let sim =
      Dpoaf_vision.Detector.detect_dataset (Rng.create 1) Dpoaf_vision.Detector.Sim
        Dpoaf_vision.Detector.Clear ~n
    in
    let real =
      Dpoaf_vision.Detector.detect_dataset (Rng.create 2) Dpoaf_vision.Detector.Real
        Dpoaf_vision.Detector.Clear ~n
    in
    let sc = Dpoaf_vision.Calibration.curve sim in
    let rc = Dpoaf_vision.Calibration.curve real in
    let table = Table.create [ "confidence"; "sim accuracy"; "real accuracy"; "gap" ] in
    List.iter2
      (fun s r ->
        if s.Dpoaf_vision.Calibration.count >= 30
           && r.Dpoaf_vision.Calibration.count >= 30
        then
          Table.add_row table
            [
              Printf.sprintf "%.1f-%.1f" s.Dpoaf_vision.Calibration.lo
                s.Dpoaf_vision.Calibration.hi;
              Printf.sprintf "%.3f" s.Dpoaf_vision.Calibration.accuracy;
              Printf.sprintf "%.3f" r.Dpoaf_vision.Calibration.accuracy;
              Printf.sprintf "%.3f"
                (abs_float
                   (s.Dpoaf_vision.Calibration.accuracy
                   -. r.Dpoaf_vision.Calibration.accuracy));
            ])
      sc rc;
    emit "fig12" table;
    Printf.printf
      "\nmax gap %.3f — %s (paper Fig 12: the two mappings approximately agree,\n\
       justifying sim-to-real transfer of the verified controllers).\n"
      (Dpoaf_vision.Calibration.max_gap sc rc)
      (if Dpoaf_vision.Calibration.consistent sc rc then "consistent"
       else "NOT consistent")
  end

let fig13 () =
  if section "fig13" "Detection accuracy by condition, sim vs real (Figure 13)"
  then begin
    let n = if fast then 5000 else 20000 in
    let table = Table.create [ "condition"; "sim"; "real" ] in
    List.iter
      (fun cond ->
        let acc domain seed =
          Dpoaf_vision.Detector.accuracy
            (Dpoaf_vision.Detector.detect_dataset (Rng.create seed) domain cond ~n)
        in
        Table.add_row table
          [
            Dpoaf_vision.Detector.condition_name cond;
            Printf.sprintf "%.3f" (acc Dpoaf_vision.Detector.Sim 11);
            Printf.sprintf "%.3f" (acc Dpoaf_vision.Detector.Real 12);
          ])
      Dpoaf_vision.Detector.all_conditions;
    emit "fig13" table;
    Printf.printf
      "\nexpected shape (paper Fig 13): accuracy degrades from clear to rain to\n\
       night, similarly in both domains.\n"
  end

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)

let copy_into_rank corpus reference rank =
  (* clone the pre-trained weights into a model with a different adapter
     rank (the adapter starts at zero either way) *)
  let open Dpoaf_tensor in
  let cfg = reference.Dpoaf_lm.Model.config in
  let m =
    Dpoaf_lm.Model.create (Rng.create 0)
      { cfg with Dpoaf_lm.Model.lora_rank = rank }
      corpus.Pipeline.Corpus.vocab
  in
  let copy dst src =
    for i = 0 to Tensor.numel dst - 1 do
      Tensor.set dst i (Tensor.get src i)
    done
  in
  copy m.Dpoaf_lm.Model.embedding reference.Dpoaf_lm.Model.embedding;
  copy m.Dpoaf_lm.Model.out.Lora.base reference.Dpoaf_lm.Model.out.Lora.base;
  copy m.Dpoaf_lm.Model.bias reference.Dpoaf_lm.Model.bias;
  m

let ablation_rank () =
  if section "abl-rank" "Ablation: LoRA adapter rank" then begin
    let a = train_artifacts () in
    let feedback = Pipeline.Feedback.create () in
    let rng = Rng.create 31 in
    let pairs =
      Pipeline.Dpoaf.collect_pairs a.corpus feedback a.reference rng
        ~m:(if fast then 12 else 16) Dom.Training
    in
    let ranks = if fast then [ 1; 4 ] else [ 1; 2; 4; 8 ] in
    let epochs = if fast then 40 else 80 in
    let table =
      Table.create [ "rank"; "final loss"; "final accuracy"; "training score /15" ]
    in
    List.iter
      (fun rank ->
        let reference = copy_into_rank a.corpus a.reference rank in
        let run =
          Trainer.train ~reference ~pairs
            { Trainer.default_config with epochs; checkpoint_every = 0; lr = 2e-3 }
            ~seed:1
        in
        let last = List.nth run.Trainer.stats (List.length run.Trainer.stats - 1) in
        let score =
          Pipeline.Dpoaf.mean_specs_satisfied a.corpus feedback run.Trainer.final
            (Rng.create 32) ~samples:(if fast then 8 else 16) Dom.Training
        in
        Table.add_row table
          [
            string_of_int rank;
            Printf.sprintf "%.4f" last.Trainer.loss;
            Printf.sprintf "%.3f" last.Trainer.accuracy;
            Printf.sprintf "%.2f" score;
          ])
      ranks;
    emit "shield" table;
    print_endline "\nhigher ranks fit the preferences faster; rank 4 (the default)";
    print_endline "already saturates on this task family."
  end

let ablation_decoding () =
  if section "abl-decode" "Ablation: grammar-constrained vs unconstrained decoding"
  then begin
    let a = train_artifacts () in
    let setup = Pipeline.Corpus.setup_by_id a.corpus "right_turn_tl" in
    let snap = Dpoaf_lm.Sampler.snapshot a.reference in
    let vocab = a.corpus.Pipeline.Corpus.vocab in
    let vocab_size = Dpoaf_lm.Vocab.size vocab in
    let all_tokens = List.init vocab_size Fun.id in
    let rng = Rng.create 33 in
    let n = if fast then 300 else 1000 in
    (* unconstrained: sample from the full softmax until <eos> or length 60 *)
    let unconstrained_valid = ref 0 in
    for _ = 1 to n do
      let rec go prefix len =
        if len >= 60 then List.rev prefix
        else begin
          let context =
            Dpoaf_lm.Model.context_of a.reference ~prompt:setup.Pipeline.Corpus.prompt
              ~prefix:(List.rev prefix)
          in
          let probs =
            Dpoaf_lm.Sampler.step_distribution snap ~context ~allowed:all_tokens
              ~temperature:1.0
          in
          let x = Rng.float rng in
          let tok =
            let acc = ref 0.0 in
            let chosen = ref (-1) in
            Array.iteri
              (fun i p ->
                if !chosen < 0 then begin
                  acc := !acc +. p;
                  if x < !acc then chosen := i
                end)
              probs;
            if !chosen < 0 then vocab_size - 1 else !chosen
          in
          if tok = Dpoaf_lm.Vocab.eos vocab then List.rev (tok :: prefix)
          else go (tok :: prefix) (len + 1)
        end
      in
      let tokens = go [] 0 in
      if
        Dpoaf_lm.Grammar.accepts setup.Pipeline.Corpus.grammar
          ~min_clauses:setup.Pipeline.Corpus.min_clauses
          ~max_clauses:setup.Pipeline.Corpus.max_clauses tokens
      then incr unconstrained_valid
    done;
    Printf.printf
      "unconstrained decoding: %d/%d samples are well-formed step lists (%.1f%%)\n"
      !unconstrained_valid n
      (100.0 *. float_of_int !unconstrained_valid /. float_of_int n);
    print_endline "constrained decoding:   every sample is well-formed by construction";
    print_endline "\n(the paper's pipeline depends on parseable responses; constrained";
    print_endline "decoding moves that burden from rejection sampling to the grammar)"
  end

let shield_section () =
  if section "shield" "Extension: runtime safety shield in the simulator" then begin
    let rollouts = if fast then 150 else 500 in
    let model = Models.model Models.Traffic_light in
    let controller, _ =
      Evaluate.controller_of_steps ~name:"before" Responses.right_turn_before_ft
    in
    let shield =
      Dpoaf_sim.Shield.create ~specs:(List.map snd Specs.all) ~actions:Vocab.actions
    in
    let config noise =
      { Dpoaf_sim.Empirical.rollouts; steps = 40; noise; seed = 51 }
    in
    let mild = { Dpoaf_sim.World.miss_rate = 0.02; false_rate = 0.01 } in
    let heavy = { Dpoaf_sim.World.miss_rate = 0.15; false_rate = 0.05 } in
    let eval ?shield noise =
      Dpoaf_sim.Empirical.evaluate ?shield ~model ~controller
        ~specs:Specs.first_five (config noise)
    in
    let table =
      Table.create
        [ "spec"; "unshielded (mild)"; "shielded (mild)"; "unshielded (heavy)";
          "shielded (heavy)" ]
    in
    let u_mild = eval mild and s_mild = eval ~shield mild in
    let u_heavy = eval heavy and s_heavy = eval ~shield heavy in
    List.iteri
      (fun i (name, _) ->
        let at rates = Printf.sprintf "%.3f" (snd (List.nth rates i)) in
        Table.add_row table [ name; at u_mild; at s_mild; at u_heavy; at s_heavy ])
      u_mild;
    emit "abl-rank" table;
    print_endline "\nthe shield enforces the invariant rules at runtime even for the";
    print_endline "flawed pre-fine-tuning controller; residual violations under";
    print_endline "heavy noise come from hazards the vehicle never perceived.";
    print_endline "(training-time fine-tuning and runtime shielding compose.)"
  end

let ablation_repair () =
  if section "abl-repair"
       "Baseline: specification-guided controller repair vs fine-tuning"
  then begin
    let a = train_artifacts () in
    let feedback = Pipeline.Feedback.create () in
    let samples = if fast then 10 else 20 in
    let eval ?harden model split =
      Pipeline.Dpoaf.mean_specs_satisfied ?harden a.corpus feedback model
        (Rng.create 41) ~samples split
    in
    let final =
      (List.hd a.result.Pipeline.Dpoaf.runs).Trainer.final
    in
    let table = Table.create [ "policy"; "training /15"; "validation /15" ] in
    let row label model harden =
      Table.add_row table
        [
          label;
          Printf.sprintf "%.2f" (eval ?harden:(Some harden) model Dom.Training);
          Printf.sprintf "%.2f" (eval ?harden:(Some harden) model Dom.Validation);
        ]
    in
    row "pre-trained" a.reference false;
    row "pre-trained + repair" a.reference true;
    row "DPO fine-tuned" final false;
    row "DPO fine-tuned + repair" final true;
    emit "abl-repair" table;
    print_endline "\npost-hoc repair hardens each sampled controller's invariant";
    print_endline "(safety) rules but leaves the generator careless; fine-tuning";
    print_endline "improves the distribution itself, and the two compose."
  end

let ablation_rl () =
  if section "abl-rl" "Baseline: REINFORCE with verifier reward vs DPO" then begin
    let a = train_artifacts () in
    let feedback = Pipeline.Feedback.create () in
    let tasks = Pipeline.Dpoaf.reinforce_tasks a.corpus feedback Dom.Training in
    let epochs = if fast then 60 else 150 in
    let config =
      { Dpoaf_dpo.Reinforce.default_config with epochs; samples_per_task = 8 }
    in
    let run, elapsed =
      wallclock (fun () -> Dpoaf_dpo.Reinforce.train ~reference:a.reference ~tasks config ~seed:1)
    in
    let table = Table.create [ "epoch"; "mean verifier reward" ] in
    List.iter
      (fun s ->
        if s.Dpoaf_dpo.Reinforce.epoch mod (max 1 (epochs / 10)) = 0 then
          Table.add_row table
            [
              string_of_int s.Dpoaf_dpo.Reinforce.epoch;
              Printf.sprintf "%.3f" s.Dpoaf_dpo.Reinforce.mean_reward;
            ])
      run.Dpoaf_dpo.Reinforce.stats;
    emit "abl-rl" table;
    let samples = if fast then 10 else 16 in
    let eval model split =
      Pipeline.Dpoaf.mean_specs_satisfied a.corpus feedback model (Rng.create 43)
        ~samples split
    in
    let dpo_final = (List.hd a.result.Pipeline.Dpoaf.runs).Trainer.final in
    Printf.printf
      "\nfinal sampled scores (training / validation):\n\
      \  REINFORCE   %.2f / %.2f   (%.0fs)\n\
      \  DPO         %.2f / %.2f\n"
      (eval run.Dpoaf_dpo.Reinforce.final Dom.Training)
      (eval run.Dpoaf_dpo.Reinforce.final Dom.Validation)
      elapsed
      (eval dpo_final Dom.Training)
      (eval dpo_final Dom.Validation);
    print_endline "\nboth automated-feedback strategies lift specification";
    print_endline "satisfaction; DPO gets there offline from a fixed pair set,";
    print_endline "REINFORCE needs fresh on-policy verification every epoch."
  end

let ablation_arch () =
  if section "abl-arch" "Ablation: bag-of-words vs GRU conditioner" then begin
    let corpus = Pipeline.Corpus.build () in
    let per_task = if fast then 25 else 40 in
    let pre_epochs = if fast then 15 else 30 in
    let dpo_epochs = if fast then 30 else 60 in
    let table =
      Table.create
        [ "arch"; "pre-train s"; "pre-FT /15"; "DPO s"; "post-FT /15" ]
    in
    List.iter
      (fun (label, arch) ->
        let feedback = Pipeline.Feedback.create () in
        let rng = Rng.create 61 in
        let config_lm =
          { Dpoaf_lm.Model.default_config with Dpoaf_lm.Model.arch }
        in
        let reference, t_pre =
          wallclock (fun () ->
              Pipeline.Corpus.pretrained_model ~config:config_lm ~per_task
                ~epochs:pre_epochs rng corpus)
        in
        let pre =
          Pipeline.Dpoaf.mean_specs_satisfied corpus feedback reference
            (Rng.create 62) ~samples:10 Dom.Training
        in
        let config =
          {
            Pipeline.Dpoaf.responses_per_task = 12;
            temperature = 1.0;
            eval_samples = 10;
            trainer =
              { Trainer.default_config with epochs = dpo_epochs;
                checkpoint_every = 0; lr = 2e-3 };
          }
        in
        let result, t_dpo =
          wallclock (fun () ->
              Pipeline.Dpoaf.run ~config ~corpus ~feedback ~reference ~seeds:[ 1 ]
                (Rng.create 63))
        in
        let post =
          Pipeline.Dpoaf.mean_specs_satisfied corpus feedback
            (List.hd result.Pipeline.Dpoaf.runs).Trainer.final (Rng.create 64)
            ~samples:10 Dom.Training
        in
        Table.add_row table
          [
            label;
            Printf.sprintf "%.1f" t_pre;
            Printf.sprintf "%.2f" pre;
            Printf.sprintf "%.1f" t_dpo;
            Printf.sprintf "%.2f" post;
          ])
      [ ("bow (default)", Dpoaf_lm.Model.Bow); ("gru", Dpoaf_lm.Model.Gru) ];
    emit "abl-arch" table;
    print_endline "\nthe order-aware GRU conditioner reaches comparable specification";
    print_endline "satisfaction at roughly an order of magnitude more compute; the";
    print_endline "windowed mean-embedding default is the better trade-off at this";
    print_endline "scale, which is why it is the pipeline default."
  end

let iterative_dpo () =
  if section "iter-dpo" "Extension: iterative DPO-AF (resample each round)" then begin
    let a = train_artifacts () in
    let feedback = Pipeline.Feedback.create () in
    let config =
      {
        Pipeline.Dpoaf.responses_per_task = (if fast then 12 else 16);
        temperature = 1.0;
        eval_samples = (if fast then 8 else 12);
        trainer =
          { Trainer.default_config with epochs = (if fast then 30 else 60);
            checkpoint_every = 0; lr = 2e-3 };
      }
    in
    let rounds, _final =
      Pipeline.Dpoaf.run_iterative ~config ~rounds:3 ~corpus:a.corpus ~feedback
        ~reference:a.reference (Rng.create 44)
    in
    let table =
      Table.create [ "round"; "new pairs"; "training /15"; "validation /15" ]
    in
    List.iter
      (fun r ->
        Table.add_row table
          [
            string_of_int r.Pipeline.Dpoaf.round;
            string_of_int r.Pipeline.Dpoaf.pairs;
            Printf.sprintf "%.2f" r.Pipeline.Dpoaf.training_score;
            Printf.sprintf "%.2f" r.Pipeline.Dpoaf.validation_score;
          ])
      rounds;
    emit "iter-dpo" table;
    print_endline "\nresampling from the updated policy keeps mining informative";
    print_endline "pairs round after round — the paper's \"unlimited data points\"";
    print_endline "argument (§4.3) realized as a closed loop."
  end

(* ------------------------------------------------------------------ *)
(* Parallel scaling of the evaluation loops (lib/exec)                  *)

let speedup () =
  if section "speedup" "Parallel scaling of the Fig 11 empirical loop (lib/exec)"
  then begin
    let rollouts = if fast then 300 else 1000 in
    let model = Models.model Models.Traffic_light in
    let controller, _ =
      Evaluate.controller_of_steps ~name:"after" Responses.right_turn_after_ft
    in
    let config =
      { Dpoaf_sim.Empirical.rollouts; steps = 40;
        noise = { Dpoaf_sim.World.miss_rate = 0.02; false_rate = 0.01 }; seed = 7 }
    in
    let eval jobs =
      wallclock (fun () ->
          Dpoaf_sim.Empirical.evaluate ~jobs ~model ~controller
            ~specs:Specs.first_five config)
    in
    let reference, t1 = eval 1 in
    let table = Table.create [ "jobs"; "wall s"; "speedup"; "identical to --jobs 1" ] in
    Table.add_row table [ "1"; Printf.sprintf "%.2f" t1; "1.00x"; "-" ];
    List.iter
      (fun jobs ->
        let rates, t = eval jobs in
        Table.add_row table
          [
            string_of_int jobs;
            Printf.sprintf "%.2f" t;
            Printf.sprintf "%.2fx" (t1 /. t);
            (if rates = reference then "yes" else "NO (BUG)");
          ])
      [ 2; 4 ];
    emit "speedup" table;
    Printf.printf
      "\n%d rollouts x 40 steps; available cores on this machine: %d.\n\
       The scheduler preserves rollout order and pre-splits RNG streams, so\n\
       the rates column is bit-for-bit identical at every worker count.\n"
      rollouts (Domain.recommended_domain_count ())
  end

(* ------------------------------------------------------------------ *)
(* Serving throughput                                                   *)

let serving () =
  if
    section "serving"
      "Throughput of the batched serving scheduler (lib/serve)"
  then begin
    let module Serve = Dpoaf_serve in
    let module SP = Dpoaf_serve.Protocol in
    let module M = Dpoaf_exec.Metrics in
    let requests_per_run = if fast then 150 else 400 in
    let corpus = Pipeline.Corpus.build () in
    (* verification-only engine: the workload is the formal-methods side
       of the service, where batch parallelism actually pays *)
    let engine = Serve.Engine.create ~corpus () in
    (* Salt the step lists per worker-count run: verification is memoized
       process-wide, so replaying identical requests would time the cache,
       not the model checker. *)
    let make_requests ~salt =
      let rng = Rng.create salt in
      List.init requests_per_run (fun i ->
          let task = Rng.choice_list rng Tasks.all in
          let steps () =
            let pool = Rng.shuffle_list rng (Responses.candidate_steps task) in
            List.filteri (fun j _ -> j < 3 + Rng.int rng 3) pool
          in
          let kind =
            if i mod 3 = 2 then
              SP.Score_pair
                { steps_a = steps (); steps_b = steps (); scenario = None;
                  domain = None; explain = false }
            else
              SP.Verify
                { steps = steps (); scenario = None; domain = None;
                  explain = false }
          in
          { SP.id = Printf.sprintf "b%d" i; kind; deadline_ms = None })
    in
    let completed_c = M.counter "serve.completed" in
    let batches_c = M.counter "serve.batches" in
    let run jobs =
      let requests = make_requests ~salt:(9000 + jobs) in
      let server =
        Serve.Server.create
          ~config:
            { Serve.Server.jobs; max_batch = 32; flush_ms = 2.0;
              queue_capacity = 1024 }
          ~handler:(Serve.Engine.handle engine) ()
      in
      let c0 = M.value completed_c and b0 = M.value batches_c in
      let responses, t =
        wallclock (fun () ->
            let tickets =
              List.map (Serve.Server.submit_async server) requests
            in
            List.map Serve.Server.await tickets)
      in
      Serve.Server.drain server;
      let not_ok =
        List.length
          (List.filter
             (fun r -> SP.status_of_body r.SP.rbody <> "ok")
             responses)
      in
      (M.value completed_c - c0, M.value batches_c - b0, not_ok, t)
    in
    let first = run 1 in
    let _, _, _, t1 = first in
    let table =
      Table.create
        [ "jobs"; "completed"; "not ok"; "batches"; "wall s"; "req/s";
          "speedup" ]
    in
    let row jobs (completed, batches, not_ok, t) =
      Table.add_row table
        [
          string_of_int jobs;
          string_of_int completed;
          string_of_int not_ok;
          string_of_int batches;
          Printf.sprintf "%.2f" t;
          Printf.sprintf "%.0f" (float_of_int completed /. t);
          Printf.sprintf "%.2fx" (t1 /. t);
        ]
    in
    row 1 first;
    List.iter (fun jobs -> row jobs (run jobs)) [ 2; 4 ];
    emit "serving" table;
    let lat = M.histogram "serve.latency" in
    let qw = M.histogram "serve.queue_wait" in
    Printf.printf
      "\n%d salted verify/score_pair requests per worker count (max_batch 32, \
       flush 2 ms);\n\
       available cores on this machine: %d (like `speedup`, wall-clock \
       scaling needs real cores;\n\
       responses are bit-identical at every worker count regardless).\n\
       end-to-end latency across all runs (ms): p50 %.2f  p90 %.2f  p99 %.2f\n\
       queue wait across all runs (ms):         p50 %.2f  p90 %.2f  p99 %.2f\n\
       expired %d, rejected %d (all counters/percentiles from \
       Dpoaf_exec.Metrics).\n"
      requests_per_run
      (Domain.recommended_domain_count ())
      (M.percentile lat 0.5 *. 1e3)
      (M.percentile lat 0.9 *. 1e3)
      (M.percentile lat 0.99 *. 1e3)
      (M.percentile qw 0.5 *. 1e3)
      (M.percentile qw 0.9 *. 1e3)
      (M.percentile qw 0.99 *. 1e3)
      (M.value (M.counter "serve.expired"))
      (M.value (M.counter "serve.rejected"));
    record_headline "serve_batch_p99_ms" (M.percentile lat 0.99 *. 1e3)
  end

(* ------------------------------------------------------------------ *)
(* Serving scale: the sharded fleet through the real stack — a daemon   *)
(* (Unix socket, continuous batching) on a spawned domain, saturated    *)
(* by a loadgen sweep per shard count.  On a one-core box the win is    *)
(* not parallelism but the aggregate prompt-state cache: each replica's *)
(* capacity is far below the pack's task count, so a single replica     *)
(* thrashes under uniform generate traffic while the router's FNV task  *)
(* affinity keeps every shard of a fleet hot.                           *)

let serving_scale () =
  if
    section "serving_scale"
      "Sharded-fleet saturation sweep: max sustained RPS at a p99 budget vs \
       shard count (writes BENCH_serving_scale.json)"
  then begin
    let module Serve = Dpoaf_serve in
    let module Loadgen = Dpoaf_serve.Loadgen in
    let module M = Dpoaf_exec.Metrics in
    let module Json = Dpoaf_util.Json in
    let corpus = Pipeline.Corpus.build () in
    (* An untrained GRU conditioner: sampling quality is irrelevant to a
       throughput bench, but the GRU's O(prompt × dim²) prompt fold is the
       per-request cost the prompt-state cache absorbs (Bow's fold is a
       window truncation — nothing worth caching). *)
    let lm =
      Dpoaf_lm.Model.create (Rng.create 31)
        { Dpoaf_lm.Model.dim = 32; context = 12; lora_rank = 2;
          arch = Dpoaf_lm.Model.Gru }
        corpus.Pipeline.Corpus.vocab
    in
    let prompt_cache_capacity = 3 in
    let tasks = List.length Tasks.all in
    let sweep =
      if fast then { Loadgen.start_rps = 50.; step_rps = 100.; max_rps = 1250. }
      else { Loadgen.start_rps = 50.; step_rps = 50.; max_rps = 1500. }
    in
    let duration_s = if fast then 0.5 else 1.2 in
    let p99_budget_ms = 25.0 in
    let contains s sub =
      let n = String.length s and m = String.length sub in
      let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
      m = 0 || go 0
    in
    let run_fleet_once shards =
      let socket =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "dpoaf-scale-%d-%d.sock" (Unix.getpid ()) shards)
      in
      let make_shard i =
        let tag =
          if shards = 1 then None else Some (Serve.Router.shard_name i)
        in
        let engine =
          Serve.Engine.create ~lm ?tag ~prompt_cache_capacity ~corpus ()
        in
        Serve.Server.create
          ~config:
            { Serve.Server.jobs = 1; max_batch = 32; flush_ms = 2.0;
              queue_capacity = 512 }
          ~batching:`Continuous ?label:tag
          ~handler:(Serve.Engine.handle engine) ()
      in
      let router = Serve.Router.create (Array.init shards make_shard) in
      let daemon =
        Domain.spawn (fun () -> Serve.Daemon.run ~socket ~router ())
      in
      let deadline = Unix.gettimeofday () +. 10.0 in
      let rec wait_up () =
        let up =
          try
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Fun.protect
              ~finally:(fun () -> Unix.close fd)
              (fun () ->
                Unix.connect fd (Unix.ADDR_UNIX socket);
                true)
          with Unix.Unix_error _ -> false
        in
        if not up then
          if Unix.gettimeofday () > deadline then
            failwith "serving_scale: daemon did not come up"
          else begin
            Unix.sleepf 0.01;
            wait_up ()
          end
      in
      wait_up ();
      let config =
        {
          Loadgen.default_config with
          socket;
          duration_s;
          mix =
            { Loadgen.generate = 1.0; verify = 0.0; score_pair = 0.0;
              refine = 0.0 };
          seed = 97;
        }
      in
      (* one short unrecorded pass so the first sweep level measures
         steady-state cache temperature, not cold-start misses *)
      ignore
        (Loadgen.run
           { config with rate = sweep.Loadgen.start_rps; duration_s = 0.4 }
          : Loadgen.report);
      let before = M.summary () in
      let sr = Loadgen.run_sweep config ~sweep ~p99_budget_ms in
      let d = M.delta before (M.summary ()) in
      let cache_sum suffix =
        List.fold_left
          (fun acc (k, v) ->
            if contains k ".prompt_state." && Filename.check_suffix k suffix
            then acc +. v
            else acc)
          0.0 d
      in
      let hits = cache_sum ".hits" and misses = cache_sum ".misses" in
      let hit_rate =
        if hits +. misses <= 0.0 then 0.0 else hits /. (hits +. misses)
      in
      Serve.Daemon.request_stop ();
      ignore (Domain.join daemon : Serve.Daemon.stats);
      (sr, hit_rate)
    in
    (* Sweep noise is one-directional: a GC pause or scheduler stall can
       fail a level the fleet would sustain, but nothing makes an
       unsustainable level pass.  Take the best of two sweeps per fleet —
       the throughput mirror of the perf gate's window minimum. *)
    let run_fleet shards =
      let better (a : Loadgen.sweep_report * float) b =
        if (fst a).Loadgen.max_rps_at_p99 >= (fst b).Loadgen.max_rps_at_p99
        then a
        else b
      in
      let first = run_fleet_once shards in
      better first (run_fleet_once shards)
    in
    let table =
      Table.create
        [ "shards"; "knee rps"; "max rps@p99"; "p99@knee ms"; "cache hit";
          "levels"; "speedup" ]
    in
    let results =
      List.map
        (fun shards ->
          Printf.printf "[%d shard%s] sweeping %.0f..%.0f rps...\n%!" shards
            (if shards = 1 then "" else "s")
            sweep.Loadgen.start_rps sweep.Loadgen.max_rps;
          (shards, run_fleet shards))
        [ 1; 2; 4 ]
    in
    let base_rps =
      match results with
      | (_, (sr, _)) :: _ -> sr.Loadgen.max_rps_at_p99
      | [] -> 0.0
    in
    let knee_p99 (sr : Loadgen.sweep_report) =
      let rec last acc = function
        | [] -> acc
        | (l : Loadgen.level) :: rest ->
            last (if l.Loadgen.sustained then Some l else acc) rest
      in
      match last None sr.Loadgen.levels with
      | Some l -> l.Loadgen.level_report.Loadgen.p99_ms
      | None -> 0.0
    in
    List.iter
      (fun (shards, ((sr : Loadgen.sweep_report), hit_rate)) ->
        Table.add_row table
          [
            string_of_int shards;
            Printf.sprintf "%.0f" sr.Loadgen.knee_offered_rps;
            Printf.sprintf "%.0f" sr.Loadgen.max_rps_at_p99;
            Printf.sprintf "%.2f" (knee_p99 sr);
            Printf.sprintf "%.0f%%" (hit_rate *. 100.);
            string_of_int (List.length sr.Loadgen.levels);
            (if base_rps > 0.0 then
               Printf.sprintf "%.2fx" (sr.Loadgen.max_rps_at_p99 /. base_rps)
             else "-");
          ])
      results;
    emit "serving_scale" table;
    Printf.printf
      "\ngenerate-only traffic over %d tasks, per-replica prompt-state cache \
       capacity %d,\n\
       p99 budget %.0f ms, %.1f s per level; shard routing is FNV task \
       affinity, so a\n\
       fleet's aggregate cache covers the task set a single replica \
       cannot (cores: %d).\n"
      tasks prompt_cache_capacity p99_budget_ms duration_s
      (Domain.recommended_domain_count ());
    let fleet_json (shards, ((sr : Loadgen.sweep_report), hit_rate)) =
      Json.obj
        [
          ("shards", Json.num (float_of_int shards));
          ("knee_offered_rps", Json.num sr.Loadgen.knee_offered_rps);
          ("max_rps_at_p99", Json.num sr.Loadgen.max_rps_at_p99);
          ("p99_ms_at_knee", Json.num (knee_p99 sr));
          ("cache_hit_rate", Json.num hit_rate);
          ("levels", Json.num (float_of_int (List.length sr.Loadgen.levels)));
        ]
    in
    let best =
      List.fold_left
        (fun acc (_, ((sr : Loadgen.sweep_report), _)) ->
          Float.max acc sr.Loadgen.max_rps_at_p99)
        0.0 results
    in
    let json =
      Json.obj
        [
          ("schema", Json.str "dpoaf-serving-scale/1");
          ("p99_budget_ms", Json.num p99_budget_ms);
          ("duration_s", Json.num duration_s);
          ("prompt_cache_capacity", Json.num (float_of_int prompt_cache_capacity));
          ("tasks", Json.num (float_of_int tasks));
          ("batching", Json.str "continuous");
          ("fleets", Json.arr (List.map fleet_json results));
          ( "speedup_multi_vs_1",
            Json.num (if base_rps > 0.0 then best /. base_rps else 0.0) );
        ]
    in
    let path = "BENCH_serving_scale.json" in
    let oc = open_out path in
    output_string oc (Json.to_string json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "(wrote %s)\n" path;
    (* the fleet headline the perf gate watches — higher is better, which
       perf_gate.ml knows by name *)
    record_headline "max_rps_at_p99" best
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                            *)

(* run a grouped Bechamel suite, OLS-fit against run count, and return
   sorted (name, ns per call) rows *)
let bechamel_rows tests =
  let open Bechamel in
  let open Toolkit in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if fast then 0.25 else 0.5))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (x :: _) -> x
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.sort compare !rows

let pretty_ns ns =
  if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
  else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
  else Printf.sprintf "%.0f ns" ns

let micro () =
  if section "micro" "Bechamel timings of the core kernels" then begin
    let open Bechamel in
    let model = Models.model Models.Traffic_light in
    let universal = Models.universal () in
    let controller, _ =
      Evaluate.controller_of_steps ~name:"after" Responses.right_turn_after_ft
    in
    let phi12 = Specs.phi 12 in
    let corpus = Pipeline.Corpus.build () in
    let lm =
      Dpoaf_lm.Model.create (Rng.create 1) Dpoaf_lm.Model.default_config
        corpus.Pipeline.Corpus.vocab
    in
    let setup = Pipeline.Corpus.setup_by_id corpus "right_turn_tl" in
    let snap = Dpoaf_lm.Sampler.snapshot lm in
    let word =
      let world = Dpoaf_sim.World.create ~model (Rng.create 2) in
      Dpoaf_sim.Runner.to_symbols
        (Dpoaf_sim.Runner.run world controller ~steps:40 (Rng.create 3))
    in
    let rng = Rng.create 4 in
    let tests =
      Test.make_grouped ~name:"dpoaf"
        [
          Test.make ~name:"product+kripke"
            (Staged.stage (fun () ->
                 Dpoaf_automata.Product.to_kripke
                   (Dpoaf_automata.Product.build ~model ~controller)));
          Test.make ~name:"tableau(neg phi12)"
            (Staged.stage (fun () ->
                 Dpoaf_automata.Tableau.gnba_of_ltl (Dpoaf_logic.Ltl.neg phi12)));
          Test.make ~name:"check-1-spec"
            (Staged.stage (fun () -> MC.check ~model ~controller phi12));
          Test.make ~name:"verify-15-specs-universal"
            (Staged.stage (fun () -> Evaluate.count_specs ~model:universal controller));
          Test.make ~name:"ltlf-eval-40-steps"
            (Staged.stage (fun () -> Dpoaf_logic.Trace.eval_finite (Specs.phi 5) word));
          Test.make ~name:"sample-response"
            (Staged.stage (fun () ->
                 Dpoaf_lm.Sampler.sample snap rng ~prompt:setup.Pipeline.Corpus.prompt
                   ~grammar:setup.Pipeline.Corpus.grammar
                   ~min_clauses:setup.Pipeline.Corpus.min_clauses
                   ~max_clauses:setup.Pipeline.Corpus.max_clauses ()));
          Test.make ~name:"rollout-40-steps"
            (Staged.stage (fun () ->
                 let world = Dpoaf_sim.World.create ~model (Rng.create 5) in
                 Dpoaf_sim.Runner.run world controller ~steps:40 (Rng.create 6)));
        ]
    in
    let table = Table.create [ "kernel"; "time per call" ] in
    List.iter
      (fun (name, ns) -> Table.add_row table [ name; pretty_ns ns ])
      (bechamel_rows tests);
    emit "micro" table
  end

(* ------------------------------------------------------------------ *)
(* Kernel-layer before/after: fused scoring + arena tape + incremental
   decoding vs the original unfused composition (PR 5)                  *)

let kernels () =
  if
    section "kernels"
      "Fused scoring kernels, arena tape and incremental decoding \
       (before/after)"
  then begin
    let module M = Dpoaf_exec.Metrics in
    let module Model = Dpoaf_lm.Model in
    let module Sampler = Dpoaf_lm.Sampler in
    let module Grammar = Dpoaf_lm.Grammar in
    let module Autodiff = Dpoaf_tensor.Autodiff in
    let module Tensor = Dpoaf_tensor.Tensor in
    let corpus = Pipeline.Corpus.build () in
    let lm =
      Model.create (Rng.create 71) Model.default_config
        corpus.Pipeline.Corpus.vocab
    in
    let snap = Sampler.snapshot lm in
    (* a synthetic preference set (sampled response pairs per training
       task): the timing target is the DPO batch step, so no verifier is
       needed to label the legs *)
    let pair_rng = Rng.create 72 in
    let sample_setup (setup : Pipeline.Corpus.task_setup) =
      Sampler.sample snap pair_rng ~prompt:setup.Pipeline.Corpus.prompt
        ~grammar:setup.Pipeline.Corpus.grammar
        ~min_clauses:setup.Pipeline.Corpus.min_clauses
        ~max_clauses:setup.Pipeline.Corpus.max_clauses ()
    in
    let pairs =
      List.concat_map
        (fun (setup : Pipeline.Corpus.task_setup) ->
          List.filter_map
            (fun _ ->
              let chosen = sample_setup setup in
              let rejected = sample_setup setup in
              if chosen = rejected then None
              else
                Some
                  {
                    Dpoaf_dpo.Pref_data.task_id =
                      setup.Pipeline.Corpus.task.Dom.id;
                    prompt = setup.Pipeline.Corpus.prompt;
                    chosen;
                    rejected;
                    chosen_score = 1;
                    rejected_score = 0;
                    chosen_satisfied = [];
                    rejected_satisfied = [];
                    chosen_vacuous = [];
                    rejected_explanations = [];
                    grammar = setup.Pipeline.Corpus.grammar;
                    min_clauses = setup.Pipeline.Corpus.min_clauses;
                    max_clauses = setup.Pipeline.Corpus.max_clauses;
                  })
            (List.init (if fast then 3 else 6) Fun.id))
        (Pipeline.Corpus.setups_of_split corpus Dom.Training)
    in
    (* --- Fig 8 training loop, before vs after ----------------------- *)
    let config =
      {
        Trainer.default_config with
        epochs = (if fast then 10 else 30);
        checkpoint_every = 0;
      }
    in
    let time_train ~impl ~tape_mode =
      Model.set_default_impl impl;
      let nodes0 = M.value (M.counter "tape.nodes") in
      let reuse0 = M.value (M.counter "tape.buffer_reuse") in
      let steps0 = M.value (M.counter "dpo.steps") in
      let run, secs =
        wallclock (fun () ->
            Trainer.train ~tape_mode ~reference:lm ~pairs config ~seed:1)
      in
      Model.set_default_impl Model.Fused;
      let steps = max 1 (M.value (M.counter "dpo.steps") - steps0) in
      let nodes_per_step =
        float_of_int (M.value (M.counter "tape.nodes") - nodes0)
        /. float_of_int steps
      in
      let reuse_per_step =
        float_of_int (M.value (M.counter "tape.buffer_reuse") - reuse0)
        /. float_of_int steps
      in
      (run, secs, nodes_per_step, reuse_per_step)
    in
    let run_before, train_before_s, nodes_before, _ =
      time_train ~impl:Model.Unfused ~tape_mode:`Fresh
    in
    let run_after, train_after_s, nodes_after, reuse_after =
      time_train ~impl:Model.Fused ~tape_mode:`Reuse
    in
    let train_identical =
      run_before.Trainer.stats = run_after.Trainer.stats
    in
    (* --- single-request generation latency, before vs after --------- *)
    (* "before": a faithful copy of the pre-arena sampler — rebuild the
       context window and the hidden state from scratch at every token
       (O(T²)), element access through Tensor.get2.  Bow only, which is
       the default config this section runs. *)
    let legacy_hidden context =
      let d = lm.Model.config.Model.dim in
      let h = Array.make d 0.0 in
      let k = float_of_int (max 1 (List.length context)) in
      List.iter
        (fun tok ->
          for j = 0 to d - 1 do
            h.(j) <- h.(j) +. (Tensor.get2 lm.Model.embedding tok j /. k)
          done)
        context;
      Array.map tanh h
    in
    let eff = Dpoaf_tensor.Lora.effective lm.Model.out in
    let legacy_distribution ~context ~allowed =
      let h = legacy_hidden context in
      let d = Array.length h in
      let logits =
        List.map
          (fun tok ->
            let acc = ref (Tensor.get lm.Model.bias tok) in
            for j = 0 to d - 1 do
              acc := !acc +. (Tensor.get2 eff tok j *. h.(j))
            done;
            !acc)
          allowed
      in
      let m = List.fold_left Float.max neg_infinity logits in
      let exps = List.map (fun l -> exp (l -. m)) logits in
      let z = List.fold_left ( +. ) 0.0 exps in
      Array.of_list (List.map (fun e -> e /. z) exps)
    in
    let pick_index rng probs =
      let x = Rng.float rng in
      let n = Array.length probs in
      let rec go i acc =
        if i >= n - 1 then n - 1
        else if x < acc +. probs.(i) then i
        else go (i + 1) (acc +. probs.(i))
      in
      go 0 0.0
    in
    let legacy_sample (setup : Pipeline.Corpus.task_setup) rng =
      let grammar = setup.Pipeline.Corpus.grammar in
      let rec go state prefix =
        if Grammar.is_final grammar state then List.rev prefix
        else begin
          let allowed =
            Grammar.allowed grammar
              ~min_clauses:setup.Pipeline.Corpus.min_clauses
              ~max_clauses:setup.Pipeline.Corpus.max_clauses state
          in
          let context =
            Model.context_of lm ~prompt:setup.Pipeline.Corpus.prompt
              ~prefix:(List.rev prefix)
          in
          let probs = legacy_distribution ~context ~allowed in
          let tok = List.nth allowed (pick_index rng probs) in
          match Grammar.advance grammar state tok with
          | Some state' -> go state' (tok :: prefix)
          | None -> assert false
        end
      in
      go (Grammar.start grammar) []
    in
    let incremental_sample (setup : Pipeline.Corpus.task_setup) rng =
      Sampler.sample snap rng ~prompt:setup.Pipeline.Corpus.prompt
        ~grammar:setup.Pipeline.Corpus.grammar
        ~min_clauses:setup.Pipeline.Corpus.min_clauses
        ~max_clauses:setup.Pipeline.Corpus.max_clauses ()
    in
    let setups = Pipeline.Corpus.(corpus.setups) in
    let n_requests = if fast then 60 else 240 in
    let requests =
      List.init n_requests (fun i ->
          (List.nth setups (i mod List.length setups), 1000 + i))
    in
    let decode_identical =
      List.for_all
        (fun (setup, seed) ->
          legacy_sample setup (Rng.create seed)
          = incremental_sample setup (Rng.create seed))
        requests
    in
    let (), gen_before_s =
      wallclock (fun () ->
          List.iter
            (fun (setup, seed) -> ignore (legacy_sample setup (Rng.create seed)))
            requests)
    in
    let (), gen_after_s =
      wallclock (fun () ->
          List.iter
            (fun (setup, seed) ->
              ignore (incremental_sample setup (Rng.create seed)))
            requests)
    in
    (* --- Bechamel micros on one response score + backward ------------ *)
    let micro_pair = List.hd pairs in
    let score_backward impl () =
      let tape = Autodiff.Tape.create () in
      let bound = Model.bind lm tape in
      let node =
        Model.response_logprob_node ~impl lm bound
          ~prompt:micro_pair.Dpoaf_dpo.Pref_data.prompt
          ~grammar:micro_pair.Dpoaf_dpo.Pref_data.grammar
          ~min_clauses:micro_pair.Dpoaf_dpo.Pref_data.min_clauses
          ~max_clauses:micro_pair.Dpoaf_dpo.Pref_data.max_clauses
          ~tokens:micro_pair.Dpoaf_dpo.Pref_data.chosen
      in
      Autodiff.backward tape node
    in
    let micro_rows =
      let open Bechamel in
      bechamel_rows
        (Test.make_grouped ~name:"kernels"
           [
             Test.make ~name:"score+backward-unfused"
               (Staged.stage (score_backward Model.Unfused));
             Test.make ~name:"score+backward-fused"
               (Staged.stage (score_backward Model.Fused));
           ])
    in
    (* --- report ------------------------------------------------------ *)
    let steps_per_epoch =
      (List.length pairs + config.Trainer.batch - 1) / config.Trainer.batch
    in
    let table =
      Table.create [ "metric"; "before"; "after"; "improvement" ]
    in
    Table.add_row table
      [
        Printf.sprintf "fig8 loop (%d pairs x %d epochs)" (List.length pairs)
          config.Trainer.epochs;
        Printf.sprintf "%.2f s" train_before_s;
        Printf.sprintf "%.2f s" train_after_s;
        Printf.sprintf "%.2fx" (train_before_s /. train_after_s);
      ];
    Table.add_row table
      [
        "generation latency / request";
        Printf.sprintf "%.3f ms"
          (gen_before_s /. float_of_int n_requests *. 1e3);
        Printf.sprintf "%.3f ms" (gen_after_s /. float_of_int n_requests *. 1e3);
        Printf.sprintf "%.2fx" (gen_before_s /. gen_after_s);
      ];
    Table.add_row table
      [
        "tape nodes / DPO step";
        Printf.sprintf "%.0f" nodes_before;
        Printf.sprintf "%.0f" nodes_after;
        Printf.sprintf "%.2fx" (nodes_before /. nodes_after);
      ];
    List.iter
      (fun (name, ns) -> Table.add_row table [ name; "-"; pretty_ns ns; "-" ])
      micro_rows;
    emit "kernels" table;
    Printf.printf
      "\n\
       training results identical: %b; decoded tokens identical: %b;\n\
       grad-buffer reuse %.0f/step after warm-up; timings above are \
       single-core\n\
       (1 domain; %d cores available).\n"
      train_identical decode_identical reuse_after
      (Domain.recommended_domain_count ());
    (* machine-readable baseline for the perf trajectory *)
    let module Json = Dpoaf_util.Json in
    let json =
      Json.obj
        [
          ("bench", Json.str "kernels");
          ("fast", Json.num (if fast then 1.0 else 0.0));
          ("jobs", Json.num (float_of_int jobs));
          ("cores_available", Json.num
             (float_of_int (Domain.recommended_domain_count ())));
          ( "note",
            Json.str
              "wall-clock on a single domain (1 core); before = unfused \
               kernels + fresh tape per step + O(T^2) decoding, after = \
               fused kernels + arena tape reuse + incremental states" );
          ( "fig8_loop",
            Json.obj
              [
                ("pairs", Json.num (float_of_int (List.length pairs)));
                ("epochs", Json.num (float_of_int config.Trainer.epochs));
                ( "steps_per_epoch",
                  Json.num (float_of_int steps_per_epoch) );
                ("before_s", Json.num train_before_s);
                ("after_s", Json.num train_after_s);
                ("speedup", Json.num (train_before_s /. train_after_s));
                ( "results_identical",
                  Json.num (if train_identical then 1.0 else 0.0) );
              ] );
          ( "generation",
            Json.obj
              [
                ("requests", Json.num (float_of_int n_requests));
                ( "before_ms_per_request",
                  Json.num (gen_before_s /. float_of_int n_requests *. 1e3) );
                ( "after_ms_per_request",
                  Json.num (gen_after_s /. float_of_int n_requests *. 1e3) );
                ("speedup", Json.num (gen_before_s /. gen_after_s));
                ( "tokens_identical",
                  Json.num (if decode_identical then 1.0 else 0.0) );
              ] );
          ( "tape",
            Json.obj
              [
                ("nodes_per_step_before", Json.num nodes_before);
                ("nodes_per_step_after", Json.num nodes_after);
                ("reduction", Json.num (nodes_before /. nodes_after));
                ("buffer_reuse_per_step_after", Json.num reuse_after);
              ] );
          ( "micro_ns",
            Json.obj (List.map (fun (n, ns) -> (n, Json.num ns)) micro_rows) );
        ]
    in
    let path = "BENCH_kernels.json" in
    let oc = open_out path in
    output_string oc (Json.to_string json);
    output_char oc '\n';
    close_out oc;
    Printf.printf "(wrote %s)\n" path;
    record_headline "fig8_loop_s" train_after_s;
    record_headline "generation_ms_per_request"
      (gen_after_s /. float_of_int n_requests *. 1e3);
    (* this section doubles as the `make kernels-check` gate: a speedup
       that changes results is a bug, not a result *)
    if not (train_identical && decode_identical) then begin
      Printf.eprintf
        "bench: fused/incremental paths diverged from the reference \
         (training identical: %b, decoding identical: %b)\n"
        train_identical decode_identical;
      exit 3
    end
  end

(* ------------------------------------------------------------------ *)
(* Domain packs: the whole loop, once per registered pack              *)

let domains_section () =
  if
    section "domains"
      "Every registered pack through a Fig-8-style DPO loop and one serve \
       batch (writes BENCH_domains.json)"
  then begin
    let module Json = Dpoaf_util.Json in
    let module Serve = Dpoaf_serve in
    let module SP = Dpoaf_serve.Protocol in
    let table =
      Table.create
        [ "domain"; "tasks"; "specs"; "pairs"; "pre"; "post"; "train s";
          "serve ok"; "serve s" ]
    in
    let entries =
      List.map
        (fun domain ->
          let (module D : Dpoaf_domain.Domain.S) = domain in
          Printf.printf "[%s] pre-training + DPO...\n%!" D.name;
          let corpus = Pipeline.Corpus.build ~domain () in
          let feedback = Pipeline.Feedback.create ~domain () in
          let rng = Rng.create 71 in
          let reference =
            Pipeline.Corpus.pretrained_model
              ~config:
                { Dpoaf_lm.Model.dim = 12; context = 10; lora_rank = 2;
                  arch = Dpoaf_lm.Model.Bow }
              ~per_task:20 ~epochs:10 rng corpus
          in
          let config =
            {
              Pipeline.Dpoaf.responses_per_task = (if fast then 8 else 12);
              temperature = 1.0;
              eval_samples = (if fast then 6 else 24);
              trainer =
                (* checkpoint only at the start and the end: the curve's
                   first/last entries are exactly the pre/post scores *)
                (let epochs = if fast then 10 else 60 in
                 { Trainer.default_config with
                   epochs; checkpoint_every = epochs; lr = 2e-3 });
            }
          in
          let result, t_train =
            wallclock (fun () ->
                Pipeline.Dpoaf.run ~config ~corpus ~feedback ~reference
                  ~seeds:[ 1 ] rng)
          in
          let curve = result.Pipeline.Dpoaf.curve in
          let pre, post =
            match curve with
            | [] -> (0.0, 0.0)
            | first :: _ ->
                ( first.Pipeline.Dpoaf.training_score,
                  (List.nth curve (List.length curve - 1))
                    .Pipeline.Dpoaf.training_score )
          in
          (* one serve batch: verification-only engine, every request
             tagged with the pack's wire-protocol domain field *)
          let engine = Serve.Engine.create ~corpus () in
          let server =
            Serve.Server.create
              ~config:
                { Serve.Server.jobs = 1; max_batch = 16; flush_ms = 1.0;
                  queue_capacity = 256 }
              ~handler:(Serve.Engine.handle engine) ()
          in
          let rng_req = Rng.create 72 in
          let requests =
            List.init (if fast then 30 else 90) (fun i ->
                let task = Rng.choice_list rng_req D.tasks in
                let steps () =
                  let pool =
                    Rng.shuffle_list rng_req
                      (Dpoaf_domain.Domain.candidate_steps domain task)
                  in
                  List.filteri (fun j _ -> j < 2 + Rng.int rng_req 3) pool
                in
                let kind =
                  if i mod 3 = 2 then
                    SP.Score_pair
                      { steps_a = steps (); steps_b = steps ();
                        scenario = None; domain = Some D.name;
                        explain = false }
                  else
                    SP.Verify
                      { steps = steps (); scenario = None;
                        domain = Some D.name; explain = false }
                in
                { SP.id = Printf.sprintf "%s-%d" D.name i;
                  kind; deadline_ms = None })
          in
          let responses, t_serve =
            wallclock (fun () ->
                let tickets =
                  List.map (Serve.Server.submit_async server) requests
                in
                List.map Serve.Server.await tickets)
          in
          Serve.Server.drain server;
          let ok =
            List.length
              (List.filter
                 (fun r -> SP.status_of_body r.SP.rbody = "ok")
                 responses)
          in
          let specs = Dpoaf_domain.Domain.spec_count domain in
          Table.add_row table
            [
              D.name;
              string_of_int (List.length D.tasks);
              string_of_int specs;
              string_of_int result.Pipeline.Dpoaf.pairs_used;
              Printf.sprintf "%.2f/%d" pre specs;
              Printf.sprintf "%.2f/%d" post specs;
              Printf.sprintf "%.1f" t_train;
              Printf.sprintf "%d/%d" ok (List.length requests);
              Printf.sprintf "%.2f" t_serve;
            ];
          ( D.name,
            Json.obj
              [
                ("tasks", Json.num (float_of_int (List.length D.tasks)));
                ("specs", Json.num (float_of_int specs));
                ( "pairs",
                  Json.num (float_of_int result.Pipeline.Dpoaf.pairs_used) );
                ("pre_training_score", Json.num pre);
                ("post_training_score", Json.num post);
                ("train_s", Json.num t_train);
                ("serve_requests", Json.num (float_of_int (List.length requests)));
                ("serve_ok", Json.num (float_of_int ok));
                ("serve_s", Json.num t_serve);
              ] ))
        (Dpoaf_domain.all ())
    in
    emit "domains" table;
    let path = "BENCH_domains.json" in
    let oc = open_out path in
    output_string oc (Json.to_string (Json.obj entries));
    output_char oc '\n';
    close_out oc;
    Printf.printf "(wrote %s)\n" path;
    print_endline "\nevery pack runs the same loop the paper runs for driving:";
    print_endline "pre-train, mine verification-ranked pairs, DPO, then serve a";
    print_endline "batch of domain-tagged verification requests."
  end

(* ------------------------------------------------------------------ *)
(* Static analysis: the whole-suite pass and the counterexample        *)
(* explainer, timed per registered pack.  Both are cold paths by        *)
(* design (run at gate time, not inside the serving loop), but their    *)
(* wall time bounds how often `make analysis-check` and `--explain`     *)
(* artifacts can run in CI — the perf gate watches the headlines.       *)

let analysis_section () =
  if
    section "analysis"
      "Whole-suite static analysis + counterexample explanation per pack"
  then begin
    let module Suite = Dpoaf_analysis.Suite_sanity in
    let table =
      Table.create
        [ "domain"; "specs"; "models"; "suite diags"; "suite ms";
          "explained"; "explain ms" ]
    in
    List.iter
      (fun domain ->
        let (module D : Dpoaf_domain.Domain.S) = domain in
        let specs = D.specs () in
        let models =
          ("universal", D.universal ())
          :: List.filter_map
               (fun sc -> Option.map (fun m -> (sc, m)) (D.model sc))
               D.scenarios
        in
        let pool =
          List.map
            (fun (name, steps) ->
              (name, (D.profile_of_steps steps).Dom.satisfied))
            D.demo_responses
        in
        (* --fast trims the conflict-core search to pair cores (the
           size-3 sweep over a 15-spec book is ~25x more tableaux) *)
        let max_core = if fast then 2 else 3 in
        let diags, t_suite =
          wallclock (fun () ->
              Suite.check ~suite:D.name ~max_core
                ~propositions:D.propositions ~actions:D.actions ~models ~pool
                specs)
        in
        let explanations, t_explain =
          wallclock (fun () ->
              List.concat_map
                (fun (_, steps) -> Dom.explain_steps domain steps)
                D.demo_responses)
        in
        (* every explanation is replay-validated by construction; an
           empty result on a pack whose demo pool contains violating
           responses would mean the explainer lost coverage *)
        if
          List.exists
            (fun (_, steps) ->
              List.length (D.profile_of_steps steps).Dom.satisfied
              < List.length specs)
            D.demo_responses
          && explanations = []
        then failwith (D.name ^ ": violating demos but no explanations");
        Table.add_row table
          [
            D.name;
            string_of_int (List.length specs);
            string_of_int (List.length models);
            string_of_int (List.length diags);
            Printf.sprintf "%.1f" (t_suite *. 1e3);
            string_of_int (List.length explanations);
            Printf.sprintf "%.2f" (t_explain *. 1e3);
          ];
        record_headline
          (Printf.sprintf "analysis_suite_%s_ms" D.name)
          (t_suite *. 1e3);
        record_headline
          (Printf.sprintf "analysis_explain_%s_ms" D.name)
          (t_explain *. 1e3))
      (Dpoaf_domain.all ());
    emit "analysis" table
  end

(* ------------------------------------------------------------------ *)
(* Counterexample-guided refinement: every pack's seeded repairable     *)
(* defect pool through the lib/refine loop under the default 3-round    *)
(* budget.  The per-pack wall time per round is what bounds the serve   *)
(* daemon's marginal cost per repair iteration, so the perf gate        *)
(* watches it alongside the serving/analysis headlines.                 *)

let refine_section () =
  if
    section "refine"
      "Counterexample-guided refinement over each pack's seeded defect pool \
       (writes BENCH_refine.json)"
  then begin
    let module Json = Dpoaf_util.Json in
    let module R = Dpoaf_refine.Refine in
    let table =
      Table.create
        [ "domain"; "defects"; "improved"; "clean"; "rounds";
          "rounds-to-clean"; "ms/round" ]
    in
    let total_rounds = ref 0 in
    let total_s = ref 0.0 in
    let entries =
      List.map
        (fun domain ->
          let (module D : Dpoaf_domain.Domain.S) = domain in
          Printf.printf "[%s] pre-training + refining the defect pool...\n%!"
            D.name;
          let corpus = Pipeline.Corpus.build ~domain () in
          let rng = Rng.create 73 in
          let model =
            Pipeline.Corpus.pretrained_model
              ~config:
                { Dpoaf_lm.Model.dim = 12; context = 10; lora_rank = 2;
                  arch = Dpoaf_lm.Model.Bow }
              ~per_task:20 ~epochs:10 rng corpus
          in
          let snapshot = Dpoaf_lm.Sampler.snapshot model in
          let vocab = corpus.Pipeline.Corpus.vocab in
          let seed = 2024 in
          let pool =
            R.defect_pool domain ~seed ~per_task:(if fast then 1 else 2)
          in
          if pool = [] then
            failwith (D.name ^ ": the seeded defect pool is empty");
          (* one rendering cache per pack, shared across the pool so
             repeated lassos hit instead of re-rendering *)
          let cache = R.explain_cache ~name:("bench.refine." ^ D.name) in
          let outcomes, t =
            wallclock (fun () ->
                List.map
                  (fun ((task : Dom.task), response) ->
                    let setup = Pipeline.Corpus.setup corpus task in
                    let sample =
                      R.conditioned_sampler ~snapshot
                        ~encode:(Dpoaf_lm.Vocab.encode vocab)
                        ~decode:(Pipeline.Corpus.steps_of_tokens corpus)
                        ~prompt:setup.Pipeline.Corpus.prompt
                        ~grammar:setup.Pipeline.Corpus.grammar
                        ~min_clauses:setup.Pipeline.Corpus.min_clauses
                        ~max_clauses:setup.Pipeline.Corpus.max_clauses
                        ~sep:(Dpoaf_lm.Vocab.sep vocab) ~seed ()
                    in
                    let refiner = R.create ~domain ~cache ~sample () in
                    R.run refiner response)
                  pool)
          in
          let count p = List.length (List.filter p outcomes) in
          let clean = count (fun o -> o.R.status = R.Clean) in
          let improved = count (fun o -> o.R.status <> R.Unchanged) in
          let rounds =
            List.fold_left
              (fun acc o -> acc + List.length o.R.rounds)
              0 outcomes
          in
          (* rounds-to-clean averages only over responses the loop fully
             repaired — the paper's headline repair-depth statistic *)
          let rounds_to_clean =
            let cleans =
              List.filter_map
                (fun o ->
                  if o.R.status = R.Clean then
                    Some (float_of_int (List.length o.R.rounds))
                  else None)
                outcomes
            in
            match cleans with
            | [] -> 0.0
            | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
          in
          let ms_per_round =
            if rounds = 0 then 0.0 else t *. 1e3 /. float_of_int rounds
          in
          total_rounds := !total_rounds + rounds;
          total_s := !total_s +. t;
          Table.add_row table
            [
              D.name;
              string_of_int (List.length pool);
              Printf.sprintf "%d/%d" improved (List.length pool);
              string_of_int clean;
              string_of_int rounds;
              Printf.sprintf "%.1f" rounds_to_clean;
              Printf.sprintf "%.2f" ms_per_round;
            ];
          record_headline
            (Printf.sprintf "refine_round_%s_ms" D.name)
            ms_per_round;
          ( D.name,
            Json.obj
              [
                ("defects", Json.num (float_of_int (List.length pool)));
                ("improved", Json.num (float_of_int improved));
                ("clean", Json.num (float_of_int clean));
                ( "repaired_fraction",
                  Json.num
                    (float_of_int improved
                    /. float_of_int (List.length pool)) );
                ("rounds", Json.num (float_of_int rounds));
                ("rounds_to_clean", Json.num rounds_to_clean);
                ("round_ms", Json.num ms_per_round);
              ] ))
        (Dpoaf_domain.all ())
    in
    (* the cross-pack aggregate the perf gate pins: marginal wall time
       per refinement round *)
    record_headline "refine_round_ms"
      (if !total_rounds = 0 then 0.0
       else !total_s *. 1e3 /. float_of_int !total_rounds);
    emit "refine" table;
    let path = "BENCH_refine.json" in
    let oc = open_out path in
    output_string oc (Json.to_string (Json.obj entries));
    output_char oc '\n';
    close_out oc;
    Printf.printf "(wrote %s)\n" path
  end

let sections =
  [
    ("fig7", fig7);
    ("fig18", fig18);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("shield", shield_section);
    ("abl-rank", ablation_rank);
    ("abl-decode", ablation_decoding);
    ("abl-repair", ablation_repair);
    ("abl-rl", ablation_rl);
    ("abl-arch", ablation_arch);
    ("iter-dpo", iterative_dpo);
    ("speedup", speedup);
    ("serving", serving);
    ("serving_scale", serving_scale);
    ("domains", domains_section);
    ("analysis", analysis_section);
    ("refine", refine_section);
    ("micro", micro);
    ("kernels", kernels);
  ]

(* strict --only: a typo'd section name is an error, not a silent no-op
   (same convention as the CLI's scenario/section arguments) *)
let () =
  match only with
  | None -> ()
  | Some names ->
      let valid = List.map fst sections in
      let unknown = List.filter (fun n -> not (List.mem n valid)) names in
      if unknown <> [] then begin
        Printf.eprintf "bench: unknown section%s %s (valid: %s)\n"
          (if List.length unknown > 1 then "s" else "")
          (String.concat ", " (List.map (Printf.sprintf "%S") unknown))
          (String.concat ", " valid);
        exit 2
      end

(* Scope each section's metrics with delta snapshots rather than resets —
   the final summary still covers the whole process, and the trace's
   terminating metrics line stays a lifetime total. *)
let run_section (name, f) =
  if not (enabled name) then f ()
  else begin
    let before = Dpoaf_exec.Metrics.summary () in
    Dpoaf_exec.Trace.with_span ~cat:"bench" name f;
    if section_metrics then
      let d = Dpoaf_exec.Metrics.delta before (Dpoaf_exec.Metrics.summary ()) in
      Printf.printf "\n[%s] section metrics: %s\n" name
        (Dpoaf_exec.Metrics.json_of_items
           (List.filter (fun (_, v) -> v <> 0.0) d))
  end

let () =
  let (), elapsed = wallclock (fun () -> List.iter run_section sections) in
  Printf.printf "\nall requested sections completed in %.1fs (--jobs %d)\n" elapsed
    jobs;
  (match trace_file with
  | None -> ()
  | Some path ->
      Dpoaf_exec.Trace.write_jsonl path;
      Dpoaf_exec.Trace.write_chrome (path ^ ".perfetto.json");
      Printf.printf "trace written to %s (and %s.perfetto.json)\n" path path);
  (match metrics_json_file with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Dpoaf_exec.Metrics.to_json ());
      output_char oc '\n';
      close_out oc;
      Printf.printf "metrics written to %s\n" path);
  Printf.printf "\nexecution metrics: %s\n" (Dpoaf_exec.Metrics.to_json ())

(* append this run to the dated results series (only when a section that
   owns a headline number actually ran) *)
let () =
  if !headline <> [] then begin
    let module Json = Dpoaf_util.Json in
    let rec mkdirs d =
      if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
        mkdirs (Filename.dirname d);
        try Sys.mkdir d 0o755 with Sys_error _ -> ()
      end
    in
    mkdirs results_dir;
    let tm = Unix.gmtime (Unix.gettimeofday ()) in
    let stamp =
      Printf.sprintf "%04d%02d%02dT%02d%02d%02dZ" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
        tm.Unix.tm_sec
    in
    let ran =
      match only with None -> List.map fst sections | Some names -> names
    in
    let json =
      Json.obj
        [
          ("schema", Json.str "dpoaf-bench/1");
          ("utc", Json.str stamp);
          ("fast", Json.num (if fast then 1.0 else 0.0));
          ("jobs", Json.num (float_of_int jobs));
          ("sections", Json.arr (List.map Json.str ran));
          ( "headline",
            Json.obj (List.map (fun (k, v) -> (k, Json.num v)) !headline) );
        ]
    in
    let write path =
      let oc = open_out path in
      output_string oc (Json.to_string json);
      output_char oc '\n';
      close_out oc
    in
    let dated = Filename.concat results_dir (stamp ^ ".json") in
    write dated;
    write (Filename.concat results_dir "latest.json");
    Printf.printf "results written to %s (and %s)\n" dated
      (Filename.concat results_dir "latest.json")
  end
