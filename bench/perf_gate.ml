(* Perf-regression gate over the dated bench results series.

   bench/main.exe writes <results-dir>/<UTC-stamp>.json and latest.json
   on every run that produces headline numbers (fig8 training-loop wall
   clock, generation latency, serve batch p99 — lower-is-better — and
   the serving-scale throughput knee max_rps_at_p99 — higher-is-better).
   This gate compares the results series against the pinned
   baseline.json:

     perf_gate [--results-dir DIR] [--tolerance-pct X]
               [--rps-tolerance-pct Y] [--window N] [--rebase]

   Wall-clock on a shared machine is noisy in one direction only —
   contention adds time, nothing subtracts it — so the gate compares
   per-metric MINIMA over the newest N dated runs (default 5, config
   must match latest.json) rather than a single sample.  A genuine
   regression slows every run in the window; scheduler noise does not.
   Throughput metrics (any headline whose name contains "rps") are the
   mirror image: noise only ever subtracts requests per second, so the
   window statistic is the MAXIMUM and a regression is the value falling
   below baseline, not rising above it.

   - no baseline yet: the window statistic is pinned as baseline.json and
     the gate passes ("fresh baseline recorded") — the first run on a
     new machine pins its own numbers;
   - any headline metric whose window statistic is more than X% (default
     10; throughput metrics use the wider Y, default 50 — see
     [rps_tolerance_pct]) worse than the baseline (above it for
     wall-clock metrics, below it for throughput metrics): exit 1,
     listing the offending metrics;
   - config mismatch (different --fast or --jobs) between baseline and
     latest: exit 2 — the runs are not comparable, re-baseline;
   - --rebase: re-pin baseline.json from the current window and pass.

   Wired into `make check` as `make perf-gate`. *)

module Json = Dpoaf_util.Json

let die code fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("perf-gate: " ^ msg);
      exit code)
    fmt

let string_opt flag =
  let rec find i =
    if i >= Array.length Sys.argv - 1 then None
    else if Sys.argv.(i) = flag then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let results_dir =
  match string_opt "--results-dir" with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "DPOAF_RESULTS_DIR" with
      | Some d -> d
      | None -> "bench/results")

let tolerance_pct =
  match string_opt "--tolerance-pct" with
  | None -> 10.0
  | Some s -> (
      match float_of_string_opt s with
      | Some x when x >= 0.0 -> x
      | _ -> die 2 "--tolerance-pct expects a non-negative number, got %S" s)

(* Throughput knees swing far more with ambient box load than wall
   clocks do — a saturation sweep whose p99 budget sits near the edge
   can lose whole rate levels to a busy neighbour — so rps metrics get
   their own, much wider band: the gate catches collapse (a routing or
   scheduling bug halving the knee), not weather. *)
let rps_tolerance_pct =
  match string_opt "--rps-tolerance-pct" with
  | None -> 50.0
  | Some s -> (
      match float_of_string_opt s with
      | Some x when x >= 0.0 -> x
      | _ ->
          die 2 "--rps-tolerance-pct expects a non-negative number, got %S" s)

let window =
  match string_opt "--window" with
  | None -> 5
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 1 -> n
      | _ -> die 2 "--window expects a positive integer, got %S" s)

let rebase = Array.exists (( = ) "--rebase") Sys.argv

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

type run = {
  utc : string;
  fast : float;
  jobs : float;
  headline : (string * float) list;
}

let load path =
  if not (Sys.file_exists path) then None
  else
    match Json.parse (read_file path) with
    | Error msg -> die 2 "%s: malformed JSON: %s" path msg
    | Ok j -> (
        let num name = Option.bind (Json.member name j) Json.to_float in
        let str name = Option.bind (Json.member name j) Json.to_str in
        let headline =
          match Json.member "headline" j with
          | Some (Json.Obj fields) ->
              List.filter_map
                (fun (k, v) ->
                  Option.map (fun x -> (k, x)) (Json.to_float v))
                fields
          | _ -> []
        in
        match (str "utc", num "fast", num "jobs") with
        | Some utc, Some fast, Some jobs when headline <> [] ->
            Some { utc; fast; jobs; headline }
        | _ ->
            die 2 "%s: missing utc/fast/jobs/headline (schema dpoaf-bench/1)"
              path)

(* the newest [window] dated runs whose config matches [latest],
   newest first; latest.json is a copy of the newest dated file, so the
   dated series alone is the whole population *)
let recent_runs latest =
  let dated =
    Sys.readdir results_dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 5
           && f.[0] = '2'
           && Filename.check_suffix f ".json")
    |> List.sort (fun a b -> compare b a)
  in
  let matching =
    List.filter_map
      (fun f ->
        match load (Filename.concat results_dir f) with
        | Some r when r.fast = latest.fast && r.jobs = latest.jobs -> Some r
        | _ -> None)
      dated
  in
  let runs = List.filteri (fun i _ -> i < window) matching in
  if runs = [] then [ latest ] else runs

(* Direction by name: throughput headlines carry "rps" in their name
   (max_rps_at_p99 from the serving_scale section) and are
   higher-is-better; everything else is wall clock, lower-is-better. *)
let higher_is_better name =
  let sub = "rps" in
  let n = String.length name and m = String.length sub in
  let rec go i = i + m <= n && (String.sub name i m = sub || go (i + 1)) in
  go 0

(* Per-metric noise-robust estimate across the window: noise only ever
   adds wall-clock time and only ever subtracts throughput, so the min
   (or max, for higher-is-better metrics) is the estimate of the true
   value. *)
let window_stat runs =
  let keys =
    List.sort_uniq compare
      (List.concat_map (fun r -> List.map fst r.headline) runs)
  in
  List.map
    (fun k ->
      let vs = List.filter_map (fun r -> List.assoc_opt k r.headline) runs in
      ( k,
        if higher_is_better k then
          List.fold_left Float.max Float.neg_infinity vs
        else List.fold_left Float.min Float.infinity vs ))
    keys

let pin_baseline path latest current n =
  let fields =
    [
      ("schema", Json.Str "dpoaf-bench/1");
      ("utc", Json.Str latest.utc);
      ("fast", Json.Num latest.fast);
      ("jobs", Json.Num latest.jobs);
      ( "note",
        Json.Str
          (Printf.sprintf
             "per-metric minimum over the %d newest matching runs" n) );
      ( "headline",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) current) );
    ]
  in
  write_file path (Json.to_string (Json.Obj fields) ^ "\n")

let () =
  let latest_path = Filename.concat results_dir "latest.json" in
  let baseline_path = Filename.concat results_dir "baseline.json" in
  let latest =
    match load latest_path with
    | Some r -> r
    | None ->
        die 2 "%s not found — run the bench first (make perf-gate does)"
          latest_path
  in
  let runs = recent_runs latest in
  let current = window_stat runs in
  if rebase || not (Sys.file_exists baseline_path) then begin
    pin_baseline baseline_path latest current (List.length runs);
    Printf.printf
      "perf-gate: %s baseline recorded from the %d newest run(s) (latest \
       %s)\n"
      (if rebase then "rebased" else "fresh")
      (List.length runs) latest.utc;
    exit 0
  end;
  let baseline = Option.get (load baseline_path) in
  if baseline.fast <> latest.fast || baseline.jobs <> latest.jobs then
    die 2
      "baseline (fast=%g jobs=%g) and latest (fast=%g jobs=%g) used \
       different bench configs — not comparable; re-pin with --rebase"
      baseline.fast baseline.jobs latest.fast latest.jobs;
  let regressions = ref [] in
  List.iter
    (fun (name, base) ->
      match List.assoc_opt name current with
      | None ->
          regressions :=
            Printf.sprintf
              "%s: present in baseline but missing from the current runs"
              name
            :: !regressions
      | Some cur ->
          let hib = higher_is_better name in
          let tol = if hib then rps_tolerance_pct else tolerance_pct in
          let limit =
            if hib then base *. (1.0 -. (tol /. 100.0))
            else base *. (1.0 +. (tol /. 100.0))
          in
          let pct =
            if base > 0.0 then (cur -. base) /. base *. 100.0 else 0.0
          in
          if (if hib then cur < limit else cur > limit) then
            regressions :=
              Printf.sprintf "%s: %.4f -> %.4f (%+.1f%%, limit %c%.0f%%)" name
                base cur pct
                (if hib then '-' else '+')
                tol
              :: !regressions
          else
            Printf.printf "perf-gate: ok %s: %.4f -> %.4f (%+.1f%%)\n" name
              base cur pct)
    baseline.headline;
  match List.rev !regressions with
  | [] ->
      Printf.printf
        "perf-gate: pass — %d headline metrics within tolerance (+%.0f%% \
         wall clock, -%.0f%% rps) of baseline %s (over %d run(s), latest \
         %s)\n"
        (List.length baseline.headline)
        tolerance_pct rps_tolerance_pct baseline.utc (List.length runs)
        latest.utc
  | rs ->
      List.iter (fun r -> Printf.eprintf "perf-gate: REGRESSION %s\n" r) rs;
      Printf.eprintf
        "perf-gate: fail — %d metric(s) regressed beyond tolerance (re-pin \
         deliberately with `dune exec bench/perf_gate.exe -- --rebase`)\n"
        (List.length rs);
      exit 1
